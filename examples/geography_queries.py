"""Warren's geography scenario (paper §I-E).

Run:  python examples/geography_queries.py

Rebuilds the setting the paper credits to Warren [25]: a 150-country
database with 900 border tuples, queried by conjunctive "questions"
whose goal order follows English word order. Shows Warren's
domain-size numbers for borders/2 (the paper's 900 / 6 / 0.04), then
reorders the questions with Warren's greedy heuristic and with the
Markov-chain system and compares call counts.
"""

from repro.analysis.modes import parse_mode_string
from repro.baselines.warren import WarrenReorderer
from repro.programs import geography
from repro.prolog import Engine, parse_term
from repro.reorder import Reorderer


def main() -> None:
    database = geography.database()
    print(
        f"world: {geography.COUNTRY_COUNT} countries, "
        f"{len(geography.BORDER_PAIRS)} border tuples, "
        f"{len(geography.REGIONS)} regions"
    )

    # The paper's worked numbers for Warren's function on borders/2.
    warren = WarrenReorderer(database)
    goal = parse_term("borders(X, Y)")
    x, y = goal.args
    print("\nWarren's multiplying factor for borders/2 "
          "(paper: 900 / 6 / 0.04):")
    print(f"  uninstantiated      : {warren.goal_factor(goal, set()):g}")
    print(f"  partly instantiated : {warren.goal_factor(goal, {id(x)}):g}")
    print(f"  fully instantiated  : {warren.goal_factor(goal, {id(x), id(y)}):g}")

    warren_database = warren.reorder_program()
    markov_program = Reorderer(database).reorder()

    print("\nquestion" + " " * 34 + "original    warren    markov")
    print("-" * 72)
    for label, query in geography.QUESTIONS:
        _, original = Engine(database).run(query)
        _, via_warren = Engine(warren_database).run(query)
        _, via_markov = markov_program.engine().run(query)
        print(
            f"{label:<40} {original.calls:>8}  {via_warren.calls:>8}  "
            f"{via_markov.calls:>8}"
        )
    print("\n(the paper: Warren's reordering 'yielded speedups up to "
          "several hundred times'; our q4 gains >100x)")


if __name__ == "__main__":
    main()
