"""The Markov-chain cost model, hands on (paper §III and §VI-A).

Run:  python examples/markov_playground.py

Recomputes the paper's Fig. 1 / Fig. 2 worked examples exactly, builds
the Fig. 4 / Fig. 5 transition matrices for ``k :- a, b, c, d``, and
shows how per-goal statistics drive the choice between goal orders.
"""

import numpy as np

from repro.experiments.figures import figure1, figure2, figures_4_5
from repro.markov import GoalStats, evaluate_sequence


def show_matrix(name: str, matrix: np.ndarray, labels) -> None:
    print(f"\n{name} (rows/cols: {', '.join(labels)})")
    for row_label, row in zip(labels, matrix):
        cells = "  ".join(f"{value:5.2f}" for value in row)
        print(f"  {row_label:>2}  {cells}")


def main() -> None:
    print(figure1().format())
    print()
    print(figure2().format())

    probs = (0.9, 0.6, 0.7, 0.8)
    costs = (5.0, 3.0, 4.0, 2.0)
    result = figures_4_5(probs, costs)
    show_matrix(
        "Fig. 4 transition matrix (single solution)",
        result["single_matrix"],
        ["S", "F", "a", "b", "c", "d"],
    )
    show_matrix(
        "Fig. 5 transition matrix (all solutions)",
        result["all_matrix"],
        ["F", "a", "b", "c", "d", "S"],
    )
    print(f"\np_body     = {result['p_body']:.4f}")
    print(f"c_single   = {result['c_single']:.4f}")
    print(f"c_multiple = {result['c_multiple']:.4f} per solution")
    print(f"visits (all-solutions chain): "
          f"{[round(v, 3) for v in result['all_visits']]}, "
          f"S visited {result['v_success']:.3f} times")

    # Goal ordering by chain cost: a generator (34 solutions), a test
    # (succeeds 30% of the time), and a medium goal.
    generator = GoalStats(cost=1.0, solutions=34.0, prob=1.0)
    test = GoalStats(cost=1.0, solutions=0.3, prob=0.3)
    medium = GoalStats(cost=2.0, solutions=2.0, prob=0.8)
    print("\nordering a conjunction of {generator, test, medium}:")
    orders = {
        "generator, medium, test": [generator, medium, test],
        "generator, test, medium": [generator, test, medium],
        "test, medium, generator": [test, medium, generator],
        "test, generator, medium": [test, generator, medium],
    }
    for label, stats in orders.items():
        evaluation = evaluate_sequence(stats)
        print(f"  {label:<26} total cost {evaluation.total_cost:10.2f}   "
              f"solutions {evaluation.solutions:6.2f}")


if __name__ == "__main__":
    main()
