"""The paper's §VII family-tree experiment, end to end.

Run:  python examples/family_tree_tour.py [--full]

Builds the 55-person pedigree (10 girl, 19 wife, 34 mother facts — the
paper's exact counts), reorders it, prints the tuned versions of the
Table II predicates (the analogue of the paper's Fig. 7 listing), and
measures the call counts per mode. ``--full`` adds the 3025-call (+,+)
sweep; without it the three cheap modes run (a few seconds).
"""

import sys

from repro.analysis.modes import parse_mode_string
from repro.experiments.harness import count_calls, mode_queries
from repro.prolog import Engine
from repro.prolog.writer import clause_to_string
from repro.programs import family_tree
from repro.reorder import Reorderer


def main() -> None:
    full = "--full" in sys.argv

    database = family_tree.database()
    print(
        f"pedigree: {len(family_tree.PERSONS)} persons, "
        f"{len(family_tree.WIFE_FACTS)} wife/2, "
        f"{len(family_tree.MOTHER_FACTS)} mother/2, "
        f"{len(family_tree.GIRL_FACTS)} girl/1"
    )

    program = Reorderer(database).reorder()

    print("\n--- tuned versions (cf. the paper's Fig. 7) " + "-" * 20)
    for indicator in program.database.predicates():
        name = indicator[0]
        if any(
            name.startswith(f"{p}_") for p, _ in family_tree.TESTED_PREDICATES
        ):
            for clause in program.database.clauses(indicator):
                print(clause_to_string(clause.to_term()))

    print("\n--- call counts per mode (cf. Table II) " + "-" * 24)
    modes = ["--", "-+", "+-"] + (["++"] if full else [])
    header = f"{'predicate':<14} {'mode':<6} {'original':>9} {'reordered':>9} {'ratio':>7}"
    print(header)
    print("-" * len(header))
    for name, arity in family_tree.TESTED_PREDICATES:
        for mode_text in modes:
            mode = parse_mode_string(mode_text)
            original = count_calls(
                lambda: Engine(database),
                mode_queries(name, mode, family_tree.PERSONS),
            )
            version = program.version_name((name, arity), mode)
            reordered = count_calls(
                lambda: program.engine(),
                mode_queries(version, mode, family_tree.PERSONS),
            )
            print(
                f"{name:<14} ({mode_text[0]},{mode_text[1]})"
                f" {original:>9} {reordered:>9} {original / reordered:>7.2f}"
            )
    if not full:
        print("\n(pass --full for the 3025-call (+,+) sweep)")


if __name__ == "__main__":
    main()
