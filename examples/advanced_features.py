"""The paper's optional / future-work features (§V-D, §VIII).

Run:  python examples/advanced_features.py

Demonstrates the three extensions beyond the core reorderer:

1. run-time tests — ``nonvar``-guarded if-then-else instead of full
   per-mode specialisation (§V-D);
2. goal unfolding — Tamaki–Sato inlining before reordering (§VIII);
3. empirical calibration — measure costs by execution and feed them to
   the reorderer (§I-E's "extended" method / §VIII's self-estimation).
"""

from repro.analysis import CalibrationOptions, Declarations, EmpiricalCalibrator
from repro.prolog import Database, Engine
from repro.reorder import ReorderOptions, Reorderer, UnfoldOptions, unfold_program


def show(title: str) -> None:
    print("\n" + "=" * 8 + f" {title} " + "=" * max(4, 56 - len(title)))


def run_cost(engine, query):
    _, metrics = engine.run(query)
    return metrics.calls


def main() -> None:
    # ------------------------------------------------------------------
    show("1. run-time tests (§V-D)")
    source = """
    big(1). big(2). big(3). big(4). big(5). big(6). big(7). big(8).
    tiny(2). tiny(4).
    pair(X, Y) :- big(X), big(Y), tiny(X), tiny(Y).
    """
    database = Database.from_source(source)
    program = Reorderer(
        database, ReorderOptions(specialize=False, runtime_tests=True)
    ).reorder()
    print(program.source())
    for query in ("pair(X, Y)", "pair(2, 4)"):
        print(
            f"{query}: {run_cost(Engine(database), query)} -> "
            f"{run_cost(program.engine(), query)} calls"
        )

    # ------------------------------------------------------------------
    show("2. unfolding (§VIII)")
    source = """
    item(1). item(2). item(3). item(4). item(5). item(6). item(7). item(8).
    costly(X) :- item(X).
    cheap(4).
    stage1(X) :- costly(X).
    stage2(X) :- stage1(X), accept(X).
    accept(X) :- cheap(X).
    answer(X) :- stage2(X).
    """
    database = Database.from_source(source)
    unfolded, report = unfold_program(database, UnfoldOptions(rounds=3))
    print("unfold log:")
    for line in report.unfolded:
        print(f"  {line}")
    plain = Reorderer(Database.from_source(source)).reorder()
    combined = Reorderer(
        Database.from_source(source), ReorderOptions(unfold_rounds=3)
    ).reorder()
    print(f"answer(X): original {run_cost(Engine(database), 'answer(X)')}, "
          f"reordered {run_cost(plain.engine(), 'answer(X)')}, "
          f"unfold+reordered {run_cost(combined.engine(), 'answer(X)')} calls")

    # ------------------------------------------------------------------
    show("3. empirical calibration (§I-E / §VIII)")
    source = """
    wide(1). wide(2). wide(3). wide(4). wide(5). wide(6).
    narrow(2).
    both(X) :- wide(X), narrow(X).
    """
    database = Database.from_source(source)
    calibrator = EmpiricalCalibrator(database, CalibrationOptions(max_samples=6))
    declarations = calibrator.calibrate(
        declarations=Declarations.from_database(database)
    )
    measured = declarations.cost_for(("wide", 1), ())
    from repro.analysis.modes import parse_mode_string

    for text in ("-", "+"):
        declaration = declarations.cost_for(("wide", 1), parse_mode_string(text))
        print(f"measured wide/1 in ({text}): cost={declaration.cost:.1f} "
              f"prob={declaration.prob:.2f} solutions={declaration.expected_solutions:.1f}")
    program = Reorderer(database, declarations=declarations).reorder()
    version = program.version_name(("both", 1), parse_mode_string("-"))
    (clause,) = program.database.clauses((version, 1))
    print(f"calibrated order for both/1: {clause.body}")


if __name__ == "__main__":
    main()
