"""The static analyses, shown one by one (paper §IV–§V).

Run:  python examples/mode_inference_demo.py

Demonstrates on one program everything the reordering system infers
before it dares to move a goal: the call graph and entry points,
recursion, fixity (side-effect contamination), semifixity (culprit
variables), legal modes by abstract interpretation, and Warren domain
estimates.
"""

from repro.analysis import (
    CallGraph,
    Declarations,
    DomainAnalysis,
    FixityAnalysis,
    ModeInference,
    SemifixityAnalysis,
    all_input_modes,
    mode_str,
    recursive_predicates,
)
from repro.prolog import Database, indicator_str

PROGRAM = """
:- entry(report/0).
:- legal_mode(flatten(+, -), flatten(+, +)).
:- recursive(flatten/2).
:- cost(flatten/2, [+, -], 15, 1.0).

item(apple, fruit).  item(leek, vegetable). item(plum, fruit).
item(kale, vegetable). item(fig, fruit).

pair(X, Y) :- item(X, K), item(Y, K), X \\== Y.

classify(X, R) :- ( item(X, fruit) -> R = sweet ; R = savoury ).

flatten([], []).
flatten([X | Xs], Out) :- flatten(Xs, Rest), append_(X, Rest, Out).
append_(X, Rest, [X | Rest]).

report :- pair(X, Y), write(X - Y), nl, fail.
report.
"""


def main() -> None:
    database = Database.from_source(PROGRAM)
    declarations = Declarations.from_database(database)
    graph = CallGraph(database)

    print("--- call graph & entries " + "-" * 39)
    for indicator in graph.predicates():
        callees = ", ".join(sorted(indicator_str(c) for c in graph.calls(indicator)))
        print(f"  {indicator_str(indicator):<14} calls: {callees or '(none)'}")
    print(f"  entry points: "
          f"{[indicator_str(e) for e in graph.entry_points(declarations.entries)]}")

    print("\n--- recursion " + "-" * 50)
    print(f"  recursive: {[indicator_str(r) for r in recursive_predicates(graph)]}")

    print("\n--- fixity (side-effects) " + "-" * 38)
    fixity = FixityAnalysis(database, graph, declarations)
    print(f"  fixed user predicates: "
          f"{[indicator_str(f) for f in sorted(fixity.fixed_predicates)]}")

    print("\n--- semifixity (culprit positions) " + "-" * 29)
    semifixity = SemifixityAnalysis(database, graph, declarations)
    for indicator in database.predicates():
        positions = semifixity.positions(indicator)
        if positions:
            print(f"  {indicator_str(indicator)}: positions {sorted(positions)}")

    print("\n--- legal modes (abstract interpretation) " + "-" * 22)
    inference = ModeInference(database, declarations, graph)
    for indicator in database.predicates():
        pairs = []
        for mode in all_input_modes(indicator[1]):
            output = inference.output_mode(indicator, mode)
            if output is not None:
                pairs.append(f"{mode_str(mode)} -> {mode_str(output)}")
        print(f"  {indicator_str(indicator):<14} {';  '.join(pairs) or 'none'}")
    for warning in inference.warnings:
        print(f"  ! {warning}")

    print("\n--- Warren domains " + "-" * 45)
    domains = DomainAnalysis(database, declarations)
    print(f"  item/2: {domains.tuple_count(('item', 2))} tuples; "
          f"domain sizes {domains.domain_size(('item', 2), 1)} x "
          f"{domains.domain_size(('item', 2), 2)}")
    from repro.analysis.modes import parse_mode_string

    for mode_text in ("--", "+-", "-+", "++"):
        mode = parse_mode_string(mode_text)
        print(f"  warren_number(item, {mode_str(mode)}) = "
              f"{domains.warren_number(('item', 2), mode):.3f}")


if __name__ == "__main__":
    main()
