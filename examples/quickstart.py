"""Quickstart: reorder the paper's §I-D grandmother program.

Run:  python examples/quickstart.py

Loads the motivating example from the paper's introduction, runs the
full reordering pipeline, prints the reordered Prolog, and compares
execution cost (predicate calls) before and after.
"""

from repro.prolog import Database, Engine
from repro.reorder import Reorderer

PROGRAM = """
wife(john, jane).   wife(bob, sue).    wife(al, meg).   wife(tom, pat).
mother(john, joan). mother(ann, joan). mother(bob, meg).
mother(sue, pat).   mother(jane, pat). mother(joan, pat).
girl(jan).          girl(deb).

female(Woman) :- girl(Woman).
female(Woman) :- wife(_, Woman).

grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""


def main() -> None:
    database = Database.from_source(PROGRAM)

    # 1. Run the original program, counting predicate calls.
    original_engine = Engine(database)
    solutions, original_metrics = original_engine.run("grandmother(X, Y)")
    print(f"original: {len(solutions)} answers, {original_metrics.calls} calls")

    # 2. Reorder: analyses + Markov-chain cost model + per-mode versions.
    program = Reorderer(database).reorder()
    print("\n--- reordered program " + "-" * 40)
    print(program.source())

    # 3. The reordered program is a drop-in replacement (dispatchers keep
    #    the original names) and produces the same set of answers.
    new_engine = program.engine()
    new_solutions, new_metrics = new_engine.run("grandmother(X, Y)")
    assert sorted(s.key() for s in solutions) == sorted(
        s.key() for s in new_solutions
    )
    print(f"reordered: {len(new_solutions)} answers, {new_metrics.calls} calls")
    print(f"ratio of improvement: {original_metrics.calls / new_metrics.calls:.2f}")

    # 4. What did the system decide?
    print("\n--- report " + "-" * 51)
    print(program.report.summary())


if __name__ == "__main__":
    main()
