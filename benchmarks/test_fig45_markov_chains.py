"""Figures 4–5 — the clause-body Markov chains of ``k :- a, b, c, d``.

Benchmarks the ``N = (I − Q)^{-1}`` analysis of both chain variants and
asserts the matrix and closed-form methods agree.
"""

import numpy as np
import pytest

from repro.experiments.figures import figures_4_5
from repro.markov.chain import all_solutions_analysis, single_solution_analysis
from repro.markov.formulas import (
    all_solutions_cost_closed_form,
    single_solution_success_closed_form,
)

PROBS = (0.9, 0.6, 0.7, 0.8)
COSTS = (5.0, 3.0, 4.0, 2.0)


def test_fig4_single_solution_chain(benchmark):
    result = benchmark(single_solution_analysis, PROBS, COSTS)
    assert result.p_success == pytest.approx(
        single_solution_success_closed_form(PROBS)
    )
    assert result.expected_cost > 0


def test_fig5_all_solutions_chain(benchmark):
    result = benchmark(all_solutions_analysis, PROBS, COSTS)
    total, _ = all_solutions_cost_closed_form(PROBS, COSTS)
    assert result.total_cost == pytest.approx(total)


def test_fig45_full_figure(benchmark):
    result = benchmark(figures_4_5, PROBS, COSTS)
    assert np.allclose(result["single_matrix"].sum(axis=1), 1.0)
    assert np.allclose(result["all_matrix"].sum(axis=1), 1.0)
    assert 0 < result["p_body"] < 1
