"""Ablation — clause indexing × reordering (§III-A).

The paper: "Clause indexing can have the same effect ... However,
unless the engine always indexes on the proper arguments, reordering
can still be useful here." We measure the cousins sweep under all four
combinations and assert reordering helps with indexing both on and off
(cousins joins on *non-first* arguments, exactly the case indexing
cannot cover).
"""

import pytest

from repro.experiments.harness import count_calls
from repro.prolog import Database, Engine
from repro.programs import family_tree
from repro.reorder.system import ReorderOptions, Reorderer

QUERY = "cousins(V0, V1)"


@pytest.fixture(scope="module")
def measurements():
    from repro.analysis.modes import parse_mode_string
    from repro.prolog import Database

    results = {}
    for label, indexing, index_argument in (
        ("indexed-first", True, 1),
        ("indexed-auto", True, "auto"),   # §III-A "the proper arguments"
        ("unindexed", False, 1),
    ):
        database = Database(indexing=indexing, index_argument=index_argument)
        database.consult(family_tree.source())
        program = Reorderer(
            database, ReorderOptions(indexing=indexing)
        ).reorder()
        # Match the measurement engine's indexing discipline.
        program.database.index_argument = index_argument
        version = program.version_name(
            ("cousins", 2), parse_mode_string("--")
        )
        _, original_metrics = Engine(database).run(QUERY)
        _, reordered_metrics = program.engine().run(f"{version}(V0, V1)")
        results[("original", label)] = (
            original_metrics.calls, original_metrics.unifications,
        )
        results[("reordered", label)] = (
            reordered_metrics.calls, reordered_metrics.unifications,
        )
    return results


class TestShape:
    def test_reordering_helps_with_first_arg_indexing(self, measurements):
        assert (
            measurements[("reordered", "indexed-first")][0]
            < measurements[("original", "indexed-first")][0]
        )

    def test_reordering_helps_with_proper_arg_indexing(self, measurements):
        # The paper's stronger §III-A claim: even an engine that indexes
        # on the proper arguments does not subsume reordering (cousins
        # joins through intermediate variables no index can see: the
        # call count is untouched by any index).
        assert (
            measurements[("reordered", "indexed-auto")][0]
            < measurements[("original", "indexed-auto")][0]
        )

    def test_reordering_helps_without_indexing(self, measurements):
        assert (
            measurements[("reordered", "unindexed")][0]
            < measurements[("original", "unindexed")][0]
        )

    def test_indexing_reduces_unifications_only(self, measurements):
        # Indexing's own contribution is head-unification filtering:
        # calls stay identical, unifications drop.
        indexed_calls, indexed_unifications = measurements[("original", "indexed-first")]
        plain_calls, plain_unifications = measurements[("original", "unindexed")]
        assert indexed_calls == plain_calls
        assert indexed_unifications <= plain_unifications

    def test_report(self, measurements):
        lines = ["ablation: indexing x reordering (cousins(-,-))"]
        for (variant, label), (calls, unifications) in sorted(measurements.items()):
            lines.append(
                f"  {variant:9s} {label:14s} calls {calls:8d}  "
                f"unifications {unifications:8d}"
            )
        print("\n" + "\n".join(lines))
        gain_reorder = (
            measurements[("original", "indexed-first")][0]
            / measurements[("reordered", "indexed-first")][0]
        )
        assert gain_reorder > 5


class TestBenchmarks:
    def test_bench_indexed_reordered(self, benchmark):
        database = family_tree.database(indexing=True)
        program = Reorderer(database).reorder()
        from repro.analysis.modes import parse_mode_string

        version = program.version_name(("cousins", 2), parse_mode_string("--"))
        total = benchmark(
            count_calls, lambda: program.engine(), [f"{version}(V0, V1)"]
        )
        assert total > 0

    def test_bench_indexed_original(self, benchmark):
        database = family_tree.database(indexing=True)
        total = benchmark(count_calls, lambda: Engine(database), [QUERY])
        assert total > 0
