"""Figure 2 — reordering a clause's goals (exact reproduction).

Paper values: expected failure cost 98.928 for the source order,
78.968 after ordering by decreasing q/c.
"""

import pytest

from repro.experiments.figures import figure2


def test_fig2_goal_reordering(benchmark):
    result = benchmark(figure2)
    assert result.original_cost == pytest.approx(98.928)
    assert result.reordered_cost == pytest.approx(78.968)
    assert result.order == [0, 3, 2, 1]
    print("\n" + result.format())
