"""Load-generator benchmark for ``repro serve``: latency + throughput.

Not a paper artefact: this guards the serving layer the way
``engine_bench.py`` guards the resolution hot path. It starts a real
server (ephemeral TCP port, thread-pool backend), drives it with
blocking client threads at fixed concurrency, and reports per-workload
throughput with p50/p99 request latency.

Usage::

    # Refresh the committed baseline after an intentional change:
    PYTHONPATH=src python benchmarks/serve_bench.py --output BENCH_serve.json

    # CI gate — fail on >4x throughput regression or any drift in the
    # deterministic counters (request/solution/rejection/generation):
    PYTHONPATH=src python benchmarks/serve_bench.py \
        --check BENCH_serve.json --tolerance 4.0

Workloads:

``query_throughput``
    8 client threads x 25 queries each against a fixed snapshot —
    the pure read path (admission, snapshot pin, engine, render).
``mixed_with_updates``
    The same read load while a writer publishes 10 generations
    underneath it — snapshot isolation on the hot path.
``shed_load``
    A deliberately saturated server (1 slot, zero queue, both occupied
    by long-running queries): 10 probes must all be shed immediately
    with ``rejected`` — measures the rejection fast path and pins the
    load-shedding contract.
``cpu_bound``
    The same CPU-heavy query load run twice — ``--backend=thread``
    then ``--backend=process`` — and compared: on a multi-core
    machine the process backend must beat the GIL-bound thread
    backend by >= 1.5x (the gate records the machine's CPU count and
    enforces the ratio only when it sees >= 2 cores, so single-core
    builders record the numbers without a meaningless failure).
``wedged_slot_recovery``
    One process-backend worker, one admission slot, and an injected
    non-cooperative ``serve.worker`` hang: the wedged request must be
    answered ``timeout`` at deadline + grace (its worker SIGKILLed,
    exactly one kill + one respawn) and the very next request must
    reuse the freed slot and succeed — the kill-on-deadline contract
    as a deterministic pin.

Deterministic counters (request totals, per-query solution counts,
rejection counts, kill/respawn counts, final generation) are compared
exactly by ``--check``; throughput is machine-dependent and compared
as a ratio against ``--tolerance``. Latency quantiles are recorded for
humans and trend dashboards, not gated.
"""

import argparse
import json
import os
import platform
import sys
import threading
import time

from repro.prolog import Database
from repro.robustness import faults
from repro.serve import ServeClient, ServeOptions, ServerThread
from repro.serve.protocol import encode

SCHEMA = "repro-serve-bench/1"

CONCURRENCY = 8
QUERIES_PER_CLIENT = 25
QUERY = "spin(A, B, C, D)"
LIMIT = 200
UPDATE_COUNT = 10
SHED_PROBES = 10

PROGRAM = (
    "\n".join(f"d({i})." for i in range(10))
    + "\nspin(A, B, C, D) :- d(A), d(B), d(C), d(D)."
    + "\nslow :- spin(_, _, _, _), spin(_, _, _, _), fail.\n"
)


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _drive_readers(address, clients, queries_each):
    """``clients`` threads, ``queries_each`` queries each; returns
    (latencies_seconds, responses)."""
    latencies = []
    responses = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def worker():
        with ServeClient(address) as client:
            barrier.wait(timeout=30.0)
            for _ in range(queries_each):
                started = time.perf_counter()
                response = client.query(QUERY, limit=LIMIT)
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    responses.append(response)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return latencies, responses, elapsed


def _summarize(latencies, responses, elapsed, deterministic):
    latencies = sorted(latencies)
    return {
        "requests": len(responses),
        "ops_per_sec": round(len(responses) / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 2),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
        "deterministic": deterministic,
    }


def workload_query_throughput():
    server = ServerThread(
        Database.from_source(PROGRAM),
        ServeOptions(port=0, max_inflight=CONCURRENCY,
                     max_queue=CONCURRENCY * 4, default_timeout=60.0),
    )
    address = server.start()
    try:
        latencies, responses, elapsed = _drive_readers(
            address, CONCURRENCY, QUERIES_PER_CLIENT
        )
        stats = server.server.stats()
    finally:
        server.stop()
    deterministic = {
        "requests": len(responses),
        "ok": sum(1 for r in responses if r["status"] == "ok"),
        "solutions_each": sorted({r.get("count") for r in responses}),
        "rejected": stats["rejected"],
        "generation": stats["generation"],
    }
    return _summarize(latencies, responses, elapsed, deterministic)


def workload_mixed_with_updates():
    server = ServerThread(
        Database.from_source(PROGRAM),
        ServeOptions(port=0, max_inflight=CONCURRENCY,
                     max_queue=CONCURRENCY * 4, default_timeout=60.0),
    )
    address = server.start()
    try:
        updates_done = []

        def writer():
            with ServeClient(address) as client:
                for n in range(UPDATE_COUNT):
                    result = client.update(asserts=[f"patch{n}(x)."])
                    updates_done.append(result["status"])
                    time.sleep(0.01)  # spread publishes across the run

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        latencies, responses, elapsed = _drive_readers(
            address, CONCURRENCY, QUERIES_PER_CLIENT
        )
        writer_thread.join()
        stats = server.server.stats()
    finally:
        server.stop()
    deterministic = {
        "requests": len(responses),
        "ok": sum(1 for r in responses if r["status"] == "ok"),
        "solutions_each": sorted({r.get("count") for r in responses}),
        "updates_ok": sum(1 for status in updates_done if status == "ok"),
        "generation": stats["generation"],
    }
    return _summarize(latencies, responses, elapsed, deterministic)


def workload_shed_load():
    """Saturate one slot + zero queue, then measure the rejection path."""
    import socket

    server = ServerThread(
        Database.from_source(PROGRAM),
        ServeOptions(port=0, max_inflight=1, max_queue=0,
                     default_timeout=30.0, drain_timeout=0.5),
    )
    address = server.start()
    host, _, port = address.rpartition(":")
    hog = socket.create_connection((host, int(port)))
    try:
        hog.sendall(encode({
            "op": "query", "id": "hog", "query": "slow", "timeout": 30.0,
        }))
        time.sleep(0.3)  # the hog owns the only slot now
        latencies = []
        responses = []
        with ServeClient(address) as probe_client:
            for _ in range(SHED_PROBES):
                started = time.perf_counter()
                response = probe_client.query(QUERY, limit=LIMIT)
                latencies.append(time.perf_counter() - started)
                responses.append(response)
        elapsed = sum(latencies)
        stats = server.server.stats()
    finally:
        hog.close()
        server.stop()
    deterministic = {
        "requests": len(responses),
        "rejected_responses": sum(
            1 for r in responses if r["status"] == "rejected"
        ),
        "rejected_total": stats["rejected"],
    }
    return _summarize(latencies, responses, elapsed, deterministic)


def _cpu_count():
    """Usable cores (cgroup/affinity aware where the platform allows)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


#: The cpu_bound gate: process-over-thread throughput on CPU-heavy
#: queries, enforced only on machines with at least this many cores
#: (the whole point of the process backend is multi-core parallelism;
#: on one core it can only tie at best).
CPU_BOUND_MIN_SPEEDUP = 1.5
CPU_BOUND_MIN_CPUS = 2
CPU_CLIENTS = 4
CPU_QUERIES_EACH = 6
#: Full 10^4-leaf spin enumeration, filtered down to 100 answers: the
#: work is pure engine CPU while the response (and its trip across the
#: worker pipe) stays small, so the comparison measures the backends'
#: compute parallelism rather than payload serialization.
CPU_QUERY = "spin(A, B, C, D), A = 0, B = 1"
CPU_LIMIT = 10_000


def _drive_cpu_backend(backend):
    server = ServerThread(
        Database.from_source(PROGRAM),
        ServeOptions(port=0, backend=backend, workers=CPU_CLIENTS,
                     max_inflight=CPU_CLIENTS, max_queue=CPU_CLIENTS * 4,
                     default_timeout=120.0),
    )
    address = server.start()
    try:
        latencies = []
        responses = []
        lock = threading.Lock()
        barrier = threading.Barrier(CPU_CLIENTS)

        def worker():
            with ServeClient(address) as client:
                barrier.wait(timeout=30.0)
                for _ in range(CPU_QUERIES_EACH):
                    started = time.perf_counter()
                    response = client.query(CPU_QUERY, limit=CPU_LIMIT)
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
                        responses.append(response)

        threads = [threading.Thread(target=worker) for _ in range(CPU_CLIENTS)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    finally:
        server.stop()
    return latencies, responses, elapsed


def workload_cpu_bound():
    """Thread vs process backend on queries that are pure engine CPU."""
    results = {}
    for backend in ("thread", "process"):
        latencies, responses, elapsed = _drive_cpu_backend(backend)
        results[backend] = {
            "ops_per_sec": (
                round(len(responses) / elapsed, 2) if elapsed else 0.0
            ),
            "ok": sum(1 for r in responses if r["status"] == "ok"),
            "latencies": latencies,
            "responses": responses,
            "elapsed": elapsed,
        }
    thread_ops = results["thread"]["ops_per_sec"]
    process_ops = results["process"]["ops_per_sec"]
    entry = _summarize(
        results["process"]["latencies"],
        results["process"]["responses"],
        results["process"]["elapsed"],
        {
            "requests_each": CPU_CLIENTS * CPU_QUERIES_EACH,
            "ok_thread": results["thread"]["ok"],
            "ok_process": results["process"]["ok"],
            "solutions_each": sorted({
                r.get("count")
                for backend_results in results.values()
                for r in backend_results["responses"]
            }),
        },
    )
    entry["thread_ops_per_sec"] = thread_ops
    entry["process_ops_per_sec"] = process_ops
    entry["process_speedup"] = (
        round(process_ops / thread_ops, 3) if thread_ops else 0.0
    )
    entry["cpus"] = _cpu_count()
    return entry


def workload_wedged_slot_recovery():
    """Kill-on-deadline as a deterministic pin: wedge -> kill -> reuse."""
    timeout, grace = 0.5, 0.25
    # Trigger on the worker's 2nd task: the 1st warms it, the 3rd runs
    # on its respawn (per-process counter back at zero) and must pass.
    faults.install_from_spec("serve.worker:hang:30@2")
    server = ServerThread(
        Database.from_source(PROGRAM),
        ServeOptions(port=0, backend="process", workers=1, max_inflight=1,
                     max_queue=0, default_timeout=timeout, grace=grace,
                     drain_timeout=0.5),
    )
    try:
        address = server.start()
        latencies = []
        responses = []
        with ServeClient(address) as client:
            for _ in range(3):  # warm-up, wedged, recovery
                started = time.perf_counter()
                response = client.query(QUERY, limit=LIMIT)
                latencies.append(time.perf_counter() - started)
                responses.append(response)
        backend_stats = server.server.stats()["backend"]
    finally:
        server.stop()
        faults.clear()
    elapsed = sum(latencies)
    entry = _summarize(latencies, responses, elapsed, {
        "statuses": [r["status"] for r in responses],
        "kills": backend_stats["kills"],
        "respawns": backend_stats["respawns"],
        "crashes": backend_stats["crashes"],
        "quarantined": backend_stats["quarantined"],
    })
    entry["wedged_answered_ms"] = round(latencies[1] * 1e3, 1)
    return entry


WORKLOADS = {
    "query_throughput": workload_query_throughput,
    "mixed_with_updates": workload_mixed_with_updates,
    "shed_load": workload_shed_load,
    "cpu_bound": workload_cpu_bound,
    "wedged_slot_recovery": workload_wedged_slot_recovery,
}

#: Workloads whose throughput the gate compares. ``shed_load`` is
#: excluded: its 10 sub-millisecond probes make the req/s figure pure
#: scheduling noise — only its deterministic rejection counters gate.
#: ``cpu_bound`` gates on its *internal* thread-vs-process ratio (a
#: same-machine comparison) rather than cross-machine throughput, and
#: ``wedged_slot_recovery`` is three requests of pinned statuses.
GATED_THROUGHPUT = ("query_throughput", "mixed_with_updates")


def run_all(names):
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "concurrency": CONCURRENCY,
        "workloads": {name: WORKLOADS[name]() for name in names},
    }


def check(results, baseline, tolerance):
    """Failure strings comparing a fresh run against the baseline:
    deterministic counters exactly, throughput as a ratio."""
    failures = []
    if baseline.get("schema") != SCHEMA:
        failures.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}"
            " (regenerate with --output)"
        )
        return failures
    for name, base in baseline.get("workloads", {}).items():
        fresh = results["workloads"].get(name)
        if fresh is None:
            failures.append(f"{name}: missing from this run")
            continue
        if (
            name in GATED_THROUGHPUT
            and fresh["ops_per_sec"] * tolerance < base["ops_per_sec"]
        ):
            failures.append(
                f"{name}: {fresh['ops_per_sec']} req/s is >{tolerance}x "
                f"below baseline {base['ops_per_sec']} req/s"
            )
        for key, expected in base["deterministic"].items():
            actual = fresh["deterministic"].get(key)
            if actual != expected:
                failures.append(
                    f"{name}: deterministic[{key}] = {actual} != baseline "
                    f"{expected}"
                )
    cpu = results["workloads"].get("cpu_bound")
    if cpu is not None and "cpu_bound" in baseline.get("workloads", {}):
        if cpu["cpus"] >= CPU_BOUND_MIN_CPUS:
            if cpu["process_speedup"] < CPU_BOUND_MIN_SPEEDUP:
                failures.append(
                    f"cpu_bound: process backend at "
                    f"{cpu['process_ops_per_sec']} req/s is only "
                    f"{cpu['process_speedup']}x the thread backend's "
                    f"{cpu['thread_ops_per_sec']} req/s "
                    f"(gate: >= {CPU_BOUND_MIN_SPEEDUP}x on "
                    f"{cpu['cpus']} cores)"
                )
        else:
            print(
                f"NOTE cpu_bound: {cpu['cpus']} usable core(s) — recorded "
                f"{cpu['process_speedup']}x process-over-thread but the "
                f">= {CPU_BOUND_MIN_SPEEDUP}x gate needs "
                f">= {CPU_BOUND_MIN_CPUS} cores to be meaningful; skipped",
                file=sys.stderr,
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--check", metavar="PATH",
                        help="compare against the baseline JSON at PATH; "
                             "exit 1 on failure")
    parser.add_argument("--tolerance", type=float, default=4.0,
                        help="allowed throughput regression factor for "
                             "--check (default 4.0; serving latency is "
                             "noisier than the engine loop)")
    parser.add_argument("--workload", action="append",
                        choices=sorted(WORKLOADS),
                        help="run only this workload (repeatable; "
                             "default: all)")
    args = parser.parse_args(argv)

    names = args.workload or sorted(WORKLOADS)
    results = run_all(names)
    for name in names:
        entry = results["workloads"][name]
        print(
            f"{name:22s} {entry['ops_per_sec']:>8.1f} req/s  "
            f"p50={entry['p50_ms']:.1f}ms p99={entry['p99_ms']:.1f}ms  "
            f"({entry['requests']} requests)"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check(results, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            return 1
        print(f"check against {args.check} passed (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
