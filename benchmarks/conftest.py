"""Shared fixtures for the benchmark suite.

Each paper table is regenerated once per session (they involve full
reorder-and-execute sweeps); the ``benchmark`` fixture then times a
representative component so pytest-benchmark has a stable, fast target.
Generated tables are printed (run with ``-s`` to see them) and written
to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name), "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def table1_result():
    from repro.experiments.tables import table1

    result = table1()
    save_table("table1.txt", result.format())
    return result


@pytest.fixture(scope="session")
def table2_result():
    from repro.experiments.tables import table2

    result = table2(include_fully_instantiated=True, include_best=True)
    save_table("table2.txt", result.format())
    return result


@pytest.fixture(scope="session")
def table3_result():
    from repro.experiments.tables import table3

    result = table3()
    save_table("table3.txt", result.format())
    return result


@pytest.fixture(scope="session")
def table4_result():
    from repro.experiments.tables import table4

    result = table4()
    save_table("table4.txt", result.format())
    return result
