"""Tabled vs untabled transitive closure on a long chain.

The headline number for the tabling subsystem: on an n-edge chain the
untabled right-recursive ``path/2`` pays Theta(n^2) resolution calls
for a sink query, while the same program under ``:- table path/2``
creates one variant table per chain node and pays O(n). The measured
call counts (and the speedup ratio) are written to
``benchmarks/results/tabling_closure.txt``.
"""

import pytest

from conftest import save_table

from repro.prolog import Engine

CHAIN_EDGES = 200
MIN_RATIO = 10.0


def chain_source(n, tabled):
    facts = "\n".join(f"edge(n{i}, n{i + 1})." for i in range(n))
    source = (
        facts + "\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
    )
    if tabled:
        source = ":- table path/2.\n" + source
    return source


@pytest.fixture(scope="module")
def closure_runs():
    query = f"path(X, n{CHAIN_EDGES})"
    runs = {}
    for label, tabled in (("untabled", False), ("tabled", True)):
        engine = Engine.from_source(
            chain_source(CHAIN_EDGES, tabled), max_depth=4_000
        )
        solutions, metrics = engine.run(query)
        runs[label] = (solutions, metrics)
    ratio = runs["untabled"][1].calls / runs["tabled"][1].calls
    lines = [
        f"Transitive closure, {CHAIN_EDGES}-edge chain, query {query}",
        f"{'variant':<10} {'calls':>8} {'answers':>8} "
        f"{'table hits':>10} {'table misses':>12}",
    ]
    for label in ("untabled", "tabled"):
        solutions, metrics = runs[label]
        lines.append(
            f"{label:<10} {metrics.calls:>8} {len(solutions):>8} "
            f"{metrics.table_hits:>10} {metrics.table_misses:>12}"
        )
    lines.append(f"speedup: {ratio:.1f}x fewer calls with tabling")
    save_table("tabling_closure.txt", "\n".join(lines))
    return runs


class TestClosure:
    def test_answer_sets_identical(self, closure_runs):
        untabled = {str(s["X"]) for s in closure_runs["untabled"][0]}
        tabled = {str(s["X"]) for s in closure_runs["tabled"][0]}
        assert tabled == untabled
        assert len(tabled) == CHAIN_EDGES

    def test_speedup_at_least_ten_fold(self, closure_runs):
        untabled_calls = closure_runs["untabled"][1].calls
        tabled_calls = closure_runs["tabled"][1].calls
        assert untabled_calls >= MIN_RATIO * tabled_calls

    def test_tabled_run_is_linear_in_chain_length(self, closure_runs):
        tabled_calls = closure_runs["tabled"][1].calls
        assert tabled_calls <= 10 * CHAIN_EDGES


class TestBenchmarks:
    def test_bench_tabled_closure(self, benchmark):
        source = chain_source(CHAIN_EDGES, tabled=True)
        query = f"path(X, n{CHAIN_EDGES})"

        def run():
            return Engine.from_source(source, max_depth=4_000).ask(query)

        assert len(benchmark(run)) == CHAIN_EDGES
