"""Ablation — Markov-chain reordering vs Warren's heuristic vs original.

The paper (§I-E) credits Warren's method with large speedups on
conjunctive queries but notes it "considers only the number of
solutions, not their costs". This ablation runs all three variants of
the family-tree program over the open-mode sweep of the tested
predicates and checks the ordering: Markov ≤ original, and Markov at
least as good as Warren overall.
"""

import pytest

from repro.baselines.warren import WarrenReorderer
from repro.experiments.harness import count_calls, mode_queries
from repro.analysis.modes import parse_mode_string
from repro.prolog import Database, Engine
from repro.programs import family_tree
from repro.reorder.system import Reorderer

PREDICATES = ["aunt", "cousins", "grandmother"]


@pytest.fixture(scope="module")
def totals():
    database = family_tree.database()
    markov_program = Reorderer(database).reorder()
    warren_database = WarrenReorderer(database).reorder_program()

    mode = parse_mode_string("--")
    result = {"original": 0, "warren": 0, "markov": 0}
    for predicate in PREDICATES:
        queries = mode_queries(predicate, mode, family_tree.PERSONS)
        result["original"] += count_calls(lambda: Engine(database), queries)
        result["warren"] += count_calls(lambda: Engine(warren_database), queries)
        version = markov_program.version_name((predicate, 2), mode)
        result["markov"] += count_calls(
            lambda: markov_program.engine(),
            mode_queries(version, mode, family_tree.PERSONS),
        )
    return result


class TestShape:
    def test_markov_beats_original(self, totals):
        assert totals["markov"] < totals["original"]

    def test_markov_at_least_matches_warren(self, totals):
        assert totals["markov"] <= totals["warren"] * 1.05

    def test_warren_answers_preserved(self):
        database = family_tree.database()
        warren_database = WarrenReorderer(database).reorder_program()
        for predicate in PREDICATES:
            query = f"{predicate}(V0, V1)"
            before = sorted(s.key() for s in Engine(database).ask(query))
            after = sorted(s.key() for s in Engine(warren_database).ask(query))
            assert before == after, predicate

    def test_report(self, totals):
        lines = ["ablation: ordering heuristics (open-mode calls, 3 predicates)"]
        for variant in ("original", "warren", "markov"):
            lines.append(f"  {variant:9s} {totals[variant]:8d}")
        print("\n" + "\n".join(lines))


class TestBenchmarks:
    def test_bench_warren_reordering(self, benchmark):
        database = family_tree.database()
        reordered = benchmark(
            lambda: WarrenReorderer(database).reorder_program()
        )
        assert len(reordered.predicates()) > 0

    def test_bench_markov_reordering(self, benchmark):
        database = family_tree.database()
        program = benchmark(lambda: Reorderer(database.copy()).reorder())
        assert program.database.predicates()
