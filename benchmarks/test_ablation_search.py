"""Ablation — exhaustive enumeration vs A* best-first search (§VI-A-3).

The paper proposes A* when "too many permutations are possible". This
ablation checks, on a 6-goal join clause (720 orders), that A* finds an
order of the same model cost while examining far fewer nodes, and times
both strategies.
"""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.modes import bind_head_states, parse_mode_string
from repro.markov.predicate_model import CostModel
from repro.prolog import Database, parse_term
from repro.prolog.database import body_goals, split_clause
from repro.reorder.goal_search import astar_search, exhaustive_search

SOURCE = """
gen(1). gen(2). gen(3). gen(4). gen(5). gen(6). gen(7). gen(8).
link(1, 2). link(2, 3). link(3, 4). link(4, 5).
small(2). small(4).
tag(1, x). tag(3, y). tag(5, z).
"""

CLAUSE = (
    "q(A, B, C) :- gen(A), link(A, B), small(B), link(B, C), "
    "tag(C, _), gen(C)"
)


@pytest.fixture(scope="module")
def search_setup():
    database = Database.from_source(SOURCE)
    model = CostModel(database, Declarations.from_database(database))
    head, body = split_clause(parse_term(CLAUSE))
    goals = body_goals(body)
    states = {}
    bind_head_states(head, parse_mode_string("---"), states)
    return model, goals, states


def test_astar_matches_exhaustive_cost(search_setup):
    model, goals, states = search_setup
    exhaustive = exhaustive_search(goals, dict(states), model, set())
    astar = astar_search(goals, dict(states), model, set())
    assert astar.evaluation.total_cost == pytest.approx(
        exhaustive.evaluation.total_cost
    )


def test_astar_explores_fewer_orders(search_setup):
    model, goals, states = search_setup
    exhaustive = exhaustive_search(goals, dict(states), model, set())
    astar = astar_search(goals, dict(states), model, set())
    # Exhaustive evaluates all 720 permutations (each a full evaluation);
    # A* counts node expansions — it must stay well under the full tree.
    assert exhaustive.explored == 720
    assert astar.explored < 720 * 6
    print(
        f"\nexhaustive: {exhaustive.explored} orders; "
        f"A*: {astar.explored} expansions"
    )


def test_bench_exhaustive(benchmark, search_setup):
    model, goals, states = search_setup
    result = benchmark(
        lambda: exhaustive_search(goals, dict(states), model, set())
    )
    assert result is not None


def test_bench_astar(benchmark, search_setup):
    model, goals, states = search_setup
    result = benchmark(lambda: astar_search(goals, dict(states), model, set()))
    assert result is not None
