"""Engine scale characteristics.

Not a paper artefact: sanity benchmarks for the substrate itself, so
regressions in the engine's fundamentals (indexing, unification,
backtracking throughput) are visible. Paper-relevant angle: first-
argument indexing is the mechanism §III-A compares reordering against.
"""

import pytest

from repro.prolog import Database, Engine, parse_term

FACT_COUNT = 5_000
CHAIN_LENGTH = 24


@pytest.fixture(scope="module")
def big_database():
    source = "\n".join(f"rec({i}, v{i % 97})." for i in range(FACT_COUNT))
    source += "\nlookup2(A, B) :- rec(A, X), rec(B, X).\n"
    return Database.from_source(source)


@pytest.fixture(scope="module")
def chain_engine():
    facts = "\n".join(f"step{i}(a, b)." for i in range(CHAIN_LENGTH))
    body = ", ".join(f"step{i}(a, B{i})" for i in range(CHAIN_LENGTH))
    return Engine.from_source(f"{facts}\nchain :- {body}.")


class TestShape:
    def test_indexed_lookup_constant_unifications(self, big_database):
        engine = Engine(big_database)
        _, metrics = engine.run("rec(2500, V)")
        assert metrics.unifications <= 2

    def test_unindexed_lookup_scans(self, big_database):
        database = big_database.copy()
        database.indexing = False
        _, metrics = Engine(database).run("rec(2500, V)")
        assert metrics.unifications == FACT_COUNT

    def test_unindexed_scan_fast_rejects_all_but_match(self, big_database):
        # Compiled head fingerprints skip the general unifier for every
        # clause whose first argument cannot match — the scan still
        # charges one (failed) unification per try, identically to the
        # interpreted engine.
        database = big_database.copy()
        database.indexing = False
        _, metrics = Engine(database).run("rec(2500, V)")
        assert metrics.head_fast_rejects == FACT_COUNT - 1
        assert metrics.skeleton_instantiations == 1


class TestBenchmarks:
    def test_bench_indexed_point_lookup(self, benchmark, big_database):
        engine = Engine(big_database)
        result = benchmark(engine.ask, "rec(2500, V)")
        assert len(result) == 1

    def test_bench_unindexed_point_lookup(self, benchmark, big_database):
        database = big_database.copy()
        database.indexing = False
        engine = Engine(database)
        result = benchmark(engine.ask, "rec(2500, V)")
        assert len(result) == 1

    def test_bench_full_enumeration(self, benchmark, big_database):
        engine = Engine(big_database)
        count = benchmark(engine.count_solutions, "rec(I, V)")
        assert count == FACT_COUNT

    def test_bench_consult(self, benchmark):
        source = "\n".join(f"rec({i}, v{i % 97})." for i in range(1_000))
        database = benchmark(Database.from_source, source)
        assert len(database) == 1_000

    def test_bench_clause_try_rate(self, benchmark, big_database):
        # Raw clause-try throughput: a full unindexed scan with the
        # query pre-parsed, so only head attempts are measured. This is
        # the cost the paper's model charges per c_i.
        database = big_database.copy()
        database.indexing = False
        engine = Engine(database)
        goal = parse_term("rec(2500, V)")
        count = benchmark(lambda: sum(1 for _ in engine.solve(goal)))
        assert count == 1

    def test_bench_deep_conjunction(self, benchmark, chain_engine):
        # The flattened goal-list loop vs. the old nested generator
        # ladder: 24 chained fact lookups, query pre-parsed.
        goal = parse_term("chain")
        count = benchmark(
            lambda: sum(1 for _ in chain_engine.solve(goal))
        )
        assert count == 1
