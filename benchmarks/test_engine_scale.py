"""Engine scale characteristics.

Not a paper artefact: sanity benchmarks for the substrate itself, so
regressions in the engine's fundamentals (indexing, unification,
backtracking throughput) are visible. Paper-relevant angle: first-
argument indexing is the mechanism §III-A compares reordering against.
"""

import pytest

from repro.prolog import Database, Engine

FACT_COUNT = 5_000


@pytest.fixture(scope="module")
def big_database():
    source = "\n".join(f"rec({i}, v{i % 97})." for i in range(FACT_COUNT))
    source += "\nlookup2(A, B) :- rec(A, X), rec(B, X).\n"
    return Database.from_source(source)


class TestShape:
    def test_indexed_lookup_constant_unifications(self, big_database):
        engine = Engine(big_database)
        _, metrics = engine.run("rec(2500, V)")
        assert metrics.unifications <= 2

    def test_unindexed_lookup_scans(self, big_database):
        database = big_database.copy()
        database.indexing = False
        _, metrics = Engine(database).run("rec(2500, V)")
        assert metrics.unifications == FACT_COUNT


class TestBenchmarks:
    def test_bench_indexed_point_lookup(self, benchmark, big_database):
        engine = Engine(big_database)
        result = benchmark(engine.ask, "rec(2500, V)")
        assert len(result) == 1

    def test_bench_unindexed_point_lookup(self, benchmark, big_database):
        database = big_database.copy()
        database.indexing = False
        engine = Engine(database)
        result = benchmark(engine.ask, "rec(2500, V)")
        assert len(result) == 1

    def test_bench_full_enumeration(self, benchmark, big_database):
        engine = Engine(big_database)
        count = benchmark(engine.count_solutions, "rec(I, V)")
        assert count == FACT_COUNT

    def test_bench_consult(self, benchmark):
        source = "\n".join(f"rec({i}, v{i % 97})." for i in range(1_000))
        database = benchmark(Database.from_source, source)
        assert len(database) == 1_000
