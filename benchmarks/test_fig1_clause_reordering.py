"""Figure 1 — reordering a predicate's clauses (exact reproduction).

Paper values: expected single-solution cost 130.24 for the source
order, 49.64 after ordering by decreasing p/c. The benchmark times the
figure computation (ratio ordering + both cost evaluations).
"""

import pytest

from repro.experiments.figures import figure1


def test_fig1_clause_reordering(benchmark):
    result = benchmark(figure1)
    assert result.original_cost == pytest.approx(130.24)
    assert result.reordered_cost == pytest.approx(49.64)
    assert result.order == [3, 1, 0, 2]
    print("\n" + result.format())
