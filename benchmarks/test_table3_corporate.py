"""Table III — reordering the corporate-database rules.

Shape criteria (paper: 2.26, 1.00, 1.00, 2.07, 1.00, 1.00, 1.17, 1.00):
rules written person-first gain when enumerating (the selective
attribute tests move forward); rules already optimal — and every
id-indexed named-employee query — stay at 1.00.
"""

import pytest

from repro.experiments.harness import count_calls
from repro.prolog import Engine
from repro.programs import corporate
from repro.reorder.system import Reorderer


class TestShape:
    def test_enumerating_rules_gain(self, table3_result):
        assert table3_result.row("benefits(-,-)").ratio > 1.1
        assert table3_result.row("maternity(-,-)").ratio > 1.05
        assert table3_result.row("tax(-,-)").ratio > 1.05

    def test_already_optimal_rules_unchanged(self, table3_result):
        for label in ("pay(-,-,-)", "average_pay(-,-)"):
            assert table3_result.row(label).ratio == pytest.approx(1.0, abs=0.1)

    def test_named_employee_queries_unchanged(self, table3_result):
        # Person-first rules are already optimal once the name is known.
        for label in ("pay(-,jane,-)", "maternity(-,jane)", "tax(-,jane)"):
            assert table3_result.row(label).ratio == pytest.approx(1.0, abs=0.15)

    def test_no_slowdowns(self, table3_result):
        for row in table3_result.rows:
            assert row.ratio >= 0.9, row.label


class TestBenchmarks:
    def test_reordering_pipeline(self, benchmark):
        database = corporate.database()
        program = benchmark(lambda: Reorderer(database.copy()).reorder())
        assert program.database.defines(("benefits", 2))

    def test_benefits_enumeration(self, benchmark, table3_result):
        database = corporate.database()
        program = Reorderer(database).reorder()
        from repro.analysis.modes import parse_mode_string

        version = program.version_name(("benefits", 2), parse_mode_string("--"))
        total = benchmark(
            count_calls, lambda: program.engine(), [f"{version}(N, B)"]
        )
        original = count_calls(lambda: Engine(database), ["benefits(N, B)"])
        assert total < original
