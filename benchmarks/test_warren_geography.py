"""The §I-E Warren geography scenario as a benchmark.

Not one of the paper's numbered tables, but its motivating prior work:
"reordering to minimize this yielded speedups up to several hundred
times" on word-order conjunctive queries over a 150-country /
900-border database. Shape criteria: both methods win on every
question, the largest gain exceeds 50x, and the Markov system is at
least as good as Warren's overall ("somewhat better than Warren's").
"""

import pytest

from repro.baselines.warren import WarrenReorderer
from repro.programs import geography
from repro.prolog import Engine
from repro.reorder.system import Reorderer


@pytest.fixture(scope="module")
def measurements():
    database = geography.database()
    warren_database = WarrenReorderer(database).reorder_program()
    markov_program = Reorderer(database).reorder()
    rows = {}
    for label, query in geography.QUESTIONS:
        _, original = Engine(database).run(query)
        _, via_warren = Engine(warren_database).run(query)
        _, via_markov = markov_program.engine().run(query)
        rows[label] = (original.calls, via_warren.calls, via_markov.calls)
    return database, markov_program, rows


class TestShape:
    def test_every_question_improves(self, measurements):
        _, _, rows = measurements
        for label, (original, warren, markov) in rows.items():
            assert warren < original, label
            assert markov < original, label

    def test_headline_speedup(self, measurements):
        _, _, rows = measurements
        best = max(original / markov for original, _, markov in rows.values())
        assert best > 50

    def test_markov_at_least_warren(self, measurements):
        _, _, rows = measurements
        warren_total = sum(w for _, w, _ in rows.values())
        markov_total = sum(m for _, _, m in rows.values())
        assert markov_total <= warren_total

    def test_report(self, measurements):
        _, _, rows = measurements
        lines = ["Warren geography scenario (calls)"]
        for label, (original, warren, markov) in rows.items():
            lines.append(
                f"  {label:<40} original {original:>7}  warren {warren:>7}  "
                f"markov {markov:>7}"
            )
        print("\n" + "\n".join(lines))


class TestBenchmarks:
    def test_bench_q4_original(self, benchmark, measurements):
        database, _, _ = measurements

        def run():
            _, metrics = Engine(database).run("q4(A, B)")
            return metrics.calls

        assert benchmark(run) > 10_000

    def test_bench_q4_reordered(self, benchmark, measurements):
        _, markov_program, _ = measurements
        version_query = "q4(A, B)"

        def run():
            _, metrics = markov_program.engine().run(version_query)
            return metrics.calls

        assert benchmark(run) < 2_000
