"""Ablation — empirical calibration vs the analytic cost model.

The paper's §I-E extension measured costs by execution ("we call each
predicate, forcing repeated backtracking, and count the
solution-tuples") and found it "impractical even for toy problems"
exhaustively; §VIII asks the system to "estimate nearly all
probabilities and costs on its own". Here the sampled calibrator feeds
measured numbers into the same reorderer and we compare outcomes and
costs against the pure model on the family tree.
"""

import pytest

from repro.analysis.calibration import CalibrationOptions, EmpiricalCalibrator
from repro.analysis.declarations import Declarations
from repro.analysis.modes import parse_mode_string
from repro.experiments.harness import count_calls, mode_queries
from repro.prolog import Engine
from repro.programs import family_tree
from repro.reorder.system import Reorderer

PREDICATES = ["aunt", "cousins", "grandmother"]


@pytest.fixture(scope="module")
def variants():
    database = family_tree.database()
    model_program = Reorderer(database).reorder()
    calibrated = EmpiricalCalibrator(
        database, CalibrationOptions(max_samples=6)
    ).calibrate(declarations=Declarations.from_database(database))
    calibrated_program = Reorderer(database, declarations=calibrated).reorder()
    return database, model_program, calibrated_program


def _sweep(program_or_db, predicate, database=None):
    mode = parse_mode_string("-+")
    if database is None:  # a reordered program
        version = program_or_db.version_name((predicate, 2), mode)
        return count_calls(
            lambda: program_or_db.engine(),
            mode_queries(version, mode, family_tree.PERSONS),
        )
    return count_calls(
        lambda: Engine(database),
        mode_queries(predicate, mode, family_tree.PERSONS),
    )


class TestShape:
    def test_both_equivalent(self, variants):
        database, model_program, calibrated_program = variants
        for predicate in PREDICATES:
            query = f"{predicate}(V0, V1)"
            reference = sorted(s.key() for s in Engine(database).ask(query))
            assert sorted(
                s.key() for s in model_program.engine().ask(query)
            ) == reference
            assert sorted(
                s.key() for s in calibrated_program.engine().ask(query)
            ) == reference

    def test_both_beat_original(self, variants):
        database, model_program, calibrated_program = variants
        report = ["ablation: calibration vs model ((-,+) sweep calls)"]
        for predicate in PREDICATES:
            original = _sweep(None, predicate, database)
            model = _sweep(model_program, predicate)
            measured = _sweep(calibrated_program, predicate)
            report.append(
                f"  {predicate:12s} original {original:7d}  "
                f"model {model:7d}  calibrated {measured:7d}"
            )
            assert model < original, predicate
            assert measured < original, predicate
        print("\n" + "\n".join(report))

    def test_calibrated_close_to_model(self, variants):
        database, model_program, calibrated_program = variants
        model_total = sum(_sweep(model_program, p) for p in PREDICATES)
        calibrated_total = sum(
            _sweep(calibrated_program, p) for p in PREDICATES
        )
        # The measured numbers should lead to comparable orders: within
        # 3x of each other in either direction.
        assert calibrated_total < model_total * 3
        assert model_total < calibrated_total * 3


class TestBenchmarks:
    def test_bench_calibration_pass(self, benchmark):
        database = family_tree.database()

        def calibrate():
            return EmpiricalCalibrator(
                database, CalibrationOptions(max_samples=4)
            ).calibrate()

        declarations = benchmark(calibrate)
        assert declarations.costs
