"""Instrumentation-overhead benchmark: is tracing safe to leave on?

Not a paper artefact: this harness gates the continuous-telemetry
promise of the streaming layer — that the sampled
``StreamingRecorder`` (``repro.observability.streaming``) costs so
little that it can stay attached in production. It times the
``deep_conjunction`` workload (the engine benchmark's hot flat
conjunction, 25 user-predicate calls per run) three ways:

``disabled``
    No instrumentation at all — the engine's fast path.
``streaming``
    A ``StreamingRecorder`` attached with its default sampling
    (1-in-64 past the rare-predicate threshold). This is the mode the
    overhead budget applies to.
``bus``
    The exhaustive PR-1 ``EventBus`` — for contrast, not gated; it
    shows what "trace everything" costs and why sampling exists.

Overhead is the **minimum of per-repeat sandwiched ratios**: every
instrumented pass is flanked by two disabled windows and compared
against the *faster* flank, and the smallest ratio across ``--repeats``
passes is kept. Scheduler noise on a shared machine is strictly
additive — interference can only slow a window down — so the faster
flank filters a descheduled baseline window (both flanks would have to
be hit), while the min across passes discards instrumented windows
that noise inflated: the same reasoning as ``timeit``'s
min-of-repeats, applied to a ratio. ``--check`` fails when the fresh
streaming overhead exceeds the committed ``max_overhead_pct`` budget
(10% by default), when deterministic sampling counters drift from the
baseline, or when the recorder misses calls.

Usage::

    # Refresh the committed baseline after an intentional change:
    PYTHONPATH=src python benchmarks/obs_bench.py --output BENCH_obs.json

    # CI gate — fail when sampled streaming costs more than the budget:
    PYTHONPATH=src python benchmarks/obs_bench.py --check BENCH_obs.json
"""

import argparse
import json
import platform
import sys
import time

from repro.observability import attach, detach
from repro.observability.streaming import StreamingRecorder, attach_recorder, detach_recorder
from repro.prolog import Engine, parse_term

SCHEMA = "repro-obs-bench/1"

#: The streaming-overhead budget: the gate the acceptance criterion
#: names. A fresh run must keep sampled streaming within this many
#: percent of the uninstrumented engine on deep_conjunction.
MAX_OVERHEAD_PCT = 10.0

CHAIN_LENGTH = 24


def build_engine():
    """The engine benchmark's deep_conjunction workload: a 24-goal flat
    conjunction of fact lookups (25 user calls per run)."""
    facts = "\n".join(f"step{i}(a, b)." for i in range(CHAIN_LENGTH))
    body = ", ".join(f"step{i}(a, B{i})" for i in range(CHAIN_LENGTH))
    return Engine.from_source(f"{facts}\nchain :- {body}."), parse_term("chain")


def time_mode(engine, goal, seconds):
    """Ops/sec of repeated solves over roughly ``seconds`` of wall."""
    runs = 0
    start = time.perf_counter()
    deadline = start + seconds
    while True:
        for _ in engine.solve(goal):
            pass
        runs += 1
        now = time.perf_counter()
        if now >= deadline:
            break
    return runs / (now - start)


def measure(min_seconds, repeats):
    """One overhead measurement: min of per-repeat sandwiched ratios.

    Each repeat times streaming and bus between two disabled windows
    (the trailing window doubles as the next repeat's leading one), so
    CPU frequency drift hits all modes equally. A repeat's baseline is
    the *faster* flank — a descheduled disabled window cannot deflate
    the ratio unless both flanks were hit — and the min across repeats
    discards instrumented windows that noise inflated. The reported
    throughputs are the per-mode bests (informational only — the gated
    quantity is the ratio).
    """
    engine, goal = build_engine()
    best = {"disabled": 0.0, "streaming": 0.0, "bus": 0.0}
    stream_ratios = []
    bus_ratios = []
    disabled_ops = time_mode(engine, goal, min_seconds)
    for _ in range(repeats):
        best["disabled"] = max(best["disabled"], disabled_ops)

        recorder = attach_recorder(engine, StreamingRecorder())
        streaming_ops = time_mode(engine, goal, min_seconds)
        best["streaming"] = max(best["streaming"], streaming_ops)
        detach_recorder(engine)

        bus = attach(engine)
        bus_ops = time_mode(engine, goal, min_seconds)
        best["bus"] = max(best["bus"], bus_ops)
        detach(engine)
        bus.clear()

        trailing_ops = time_mode(engine, goal, min_seconds)
        baseline_ops = max(disabled_ops, trailing_ops)
        stream_ratios.append(baseline_ops / streaming_ops)
        bus_ratios.append(baseline_ops / bus_ops)
        disabled_ops = trailing_ops
    best["disabled"] = max(best["disabled"], disabled_ops)

    # Deterministic sampling counters from one clean instrumented run.
    engine, goal = build_engine()
    recorder = attach_recorder(engine, StreamingRecorder())
    for _ in engine.solve(goal):
        pass
    counters = {
        "calls": recorder.calls,
        "sampled_boxes": recorder.aggregates.sampled_boxes(),
        "predicates": len(recorder.aggregates.total_calls),
    }
    detach_recorder(engine)

    overhead_pct = (min(stream_ratios) - 1.0) * 100.0
    bus_overhead_pct = (min(bus_ratios) - 1.0) * 100.0
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "workload": "deep_conjunction",
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "ops_per_sec": {name: round(ops, 1) for name, ops in best.items()},
        "overhead_pct": round(overhead_pct, 2),
        "bus_overhead_pct": round(bus_overhead_pct, 2),
        "counters": counters,
    }


def check(results, baseline):
    """Gate a fresh run against the committed baseline.

    Returns failure strings (empty = pass). The streaming overhead is
    compared against the *baseline's* committed budget — the budget is
    policy, so it lives in the committed file; throughput itself is
    machine-dependent and not gated here (engine_bench covers it). The
    sampling counters are deterministic and must match exactly.
    """
    failures = []
    if baseline.get("schema") != SCHEMA:
        failures.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}"
            " (regenerate with --output)"
        )
        return failures
    budget = baseline.get("max_overhead_pct", MAX_OVERHEAD_PCT)
    if results["overhead_pct"] > budget:
        failures.append(
            f"streaming overhead {results['overhead_pct']}% exceeds the "
            f"{budget}% budget (disabled "
            f"{results['ops_per_sec']['disabled']} ops/s vs streaming "
            f"{results['ops_per_sec']['streaming']} ops/s)"
        )
    for key, expected in baseline.get("counters", {}).items():
        actual = results["counters"].get(key)
        if actual != expected:
            failures.append(
                f"counters[{key}] = {actual} != baseline {expected}"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", metavar="PATH", help="write results as JSON to PATH"
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare against the baseline JSON at PATH; exit 1 on failure",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.4,
        help="timing-loop duration per mode per repeat (default 0.4)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="paired passes; median overhead ratio kept (default 5)",
    )
    args = parser.parse_args(argv)

    results = measure(args.min_seconds, args.repeats)
    for name, ops in results["ops_per_sec"].items():
        print(f"{name:10s} {ops:>10.1f} ops/s")
    print(
        f"streaming overhead: {results['overhead_pct']}% "
        f"(budget {results['max_overhead_pct']}%); "
        f"bus overhead: {results['bus_overhead_pct']}%"
    )
    print(
        f"counters: {results['counters']['calls']} calls, "
        f"{results['counters']['sampled_boxes']} sampled"
    )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check(results, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            return 1
        print(f"check against {args.check} passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
