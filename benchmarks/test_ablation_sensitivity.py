"""Ablation — sensitivity of the reorderer to cost-model error.

The Markov model is "the basis of a heuristic method: it glosses
subtleties of execution" (§VI-A-1), so its numbers are wrong by
construction; the practical question is how wrong they can be before
the chosen orders degrade. We perturb every predicate's estimated cost
and solution count by a deterministic pseudo-random factor up to
``(1+ε)`` in either direction, reorder under the perturbed model, and
measure the *real* executed cost of the result.
"""

import hashlib

import pytest

from repro.analysis.modes import parse_mode_string
from repro.experiments.harness import count_calls, mode_queries
from repro.markov.goal_stats import GoalStats
from repro.markov.predicate_model import CostModel
from repro.prolog import Engine
from repro.programs import family_tree
from repro.reorder.system import Reorderer

PREDICATES = ["aunt", "cousins", "grandmother"]
#: Up to ±(1+eps): 2.0 means a 3x mis-estimate either way; 9.0 a 10x one.
EPSILONS = [0.0, 0.5, 1.0, 2.0, 9.0]


def _noise_factor(key: str, epsilon: float) -> float:
    """Deterministic multiplicative noise in [1/(1+eps), 1+eps]."""
    if epsilon == 0.0:
        return 1.0
    digest = hashlib.sha256(key.encode()).digest()
    unit = digest[0] / 255.0  # 0..1
    factor = 1.0 + epsilon * unit
    return factor if digest[1] % 2 == 0 else 1.0 / factor


class NoisyCostModel(CostModel):
    """A cost model whose answers are perturbed by ±(1+eps) factors."""

    epsilon = 0.0

    def predicate_stats(self, indicator, mode):
        stats = super().predicate_stats(indicator, mode)
        if stats is None or self.epsilon == 0.0:
            return stats
        key = f"{indicator}{mode}"
        cost_factor = _noise_factor("c" + key, self.epsilon)
        solution_factor = _noise_factor("s" + key, self.epsilon)
        return GoalStats(
            cost=stats.cost * cost_factor,
            solutions=stats.solutions * solution_factor,
            prob=stats.prob,
        )


def _reorder_with_noise(epsilon: float):
    database = family_tree.database()
    reorderer = Reorderer(database)
    noisy = NoisyCostModel(
        database, reorderer.declarations, reorderer.modes, reorderer.domains
    )
    noisy.epsilon = epsilon
    reorderer.model = noisy
    return reorderer.reorder()


def _realized_cost(program) -> int:
    mode = parse_mode_string("-+")
    total = 0
    for predicate in PREDICATES:
        version = program.version_name((predicate, 2), mode)
        total += count_calls(
            lambda: program.engine(),
            mode_queries(version, mode, family_tree.PERSONS),
        )
    return total


@pytest.fixture(scope="module")
def sweep_costs():
    return {epsilon: _realized_cost(_reorder_with_noise(epsilon))
            for epsilon in EPSILONS}


@pytest.fixture(scope="module")
def original_cost():
    database = family_tree.database()
    mode = parse_mode_string("-+")
    return sum(
        count_calls(
            lambda: Engine(database),
            mode_queries(predicate, mode, family_tree.PERSONS),
        )
        for predicate in PREDICATES
    )


class TestShape:
    def test_zero_noise_is_baseline(self, sweep_costs):
        baseline = _realized_cost(Reorderer(family_tree.database()).reorder())
        assert sweep_costs[0.0] == baseline

    def test_moderate_noise_tolerated(self, sweep_costs):
        # ±50% mis-estimation should barely move the outcome: the gaps
        # between good and bad orders on this program are large.
        assert sweep_costs[0.5] <= sweep_costs[0.0] * 2.0

    def test_all_noise_levels_still_beat_original(self, sweep_costs, original_cost):
        for epsilon, cost in sweep_costs.items():
            assert cost < original_cost / 3, f"epsilon={epsilon}"

    def test_degradation_sets_in_at_order_of_magnitude_error(self, sweep_costs):
        # 10x mis-estimates finally change some decisions — but even
        # then the result remains far better than no reordering.
        assert sweep_costs[9.0] >= sweep_costs[0.0]

    def test_report(self, sweep_costs, original_cost):
        lines = [
            "ablation: cost-model sensitivity ((-,+) sweep, 3 predicates)",
            f"  original (no reordering)          {original_cost:8d}",
        ]
        for epsilon in EPSILONS:
            lines.append(
                f"  reordered, model noise ±{epsilon:<4}     "
                f"{sweep_costs[epsilon]:8d}"
            )
        print("\n" + "\n".join(lines))


class TestBenchmarks:
    def test_bench_noisy_reorder(self, benchmark):
        program = benchmark(lambda: _reorder_with_noise(1.0))
        assert program.database.predicates()
