"""Table I — restrictions on reordering.

Qualitative table: every restriction class the paper lists must be
detected by the analyses on the probe program. The benchmark times the
full analysis battery (call graph, fixity, semifixity, mode inference,
block partition) on the probe.
"""

from repro.experiments.tables import table1


def test_table1_restrictions(benchmark, table1_result):
    result = benchmark(table1)
    assert len(result.rows) == 7
    for row in result.rows:
        assert row.reordered == 1, f"restriction not detected: {row.label}"
