"""Table II — reordering the family-tree program.

The session fixture regenerates the full table (all four predicates ×
all four modes, one call per possible instantiation: 1 + 55 + 55 +
3025 calls per predicate, exactly the paper's §VII methodology) and the
tests assert its shape against the paper's:

* large ratios in the half-instantiated modes (paper: aunt 43.91,
  grandmother 347.66, cousins 52.49);
* cousins gains in every open mode (paper: 42.65 / 52.49 / 24.84);
* ratios near 1.00 where the source order is already optimal;
* occasional ratios at-or-below 1 in (+,+) (paper: brother 0.75,
  cousins 0.91) but no catastrophic slowdowns.

The timed benchmarks cover the two pipeline halves: running the
reordering system on the program, and executing the paper's
half-instantiated query sweep on the reordered output.
"""

import pytest

from repro.analysis.modes import parse_mode_string
from repro.experiments.harness import count_calls, mode_queries
from repro.prolog import Engine
from repro.programs import family_tree
from repro.reorder.system import Reorderer


class TestShape:
    def test_half_instantiated_gains(self, table2_result):
        assert table2_result.row("aunt(-,+)").ratio > 10
        assert table2_result.row("grandmother(-,+)").ratio > 5
        assert table2_result.row("cousins(-,+)").ratio > 10
        assert table2_result.row("brother(-,+)").ratio > 2

    def test_cousins_open_modes(self, table2_result):
        assert table2_result.row("cousins(-,-)").ratio > 10
        assert table2_result.row("cousins(+,-)").ratio > 10

    def test_fully_instantiated_modest(self, table2_result):
        # "for mode (+,+), enough variables are already instantiated
        # that goal order is not crucial".
        for predicate in ("aunt", "brother", "cousins", "grandmother"):
            ratio = table2_result.row(f"{predicate}(+,+)").ratio
            assert 0.7 < ratio < 10, predicate

    def test_no_catastrophic_slowdowns(self, table2_result):
        for row in table2_result.rows:
            assert row.ratio > 0.7, row.label

    def test_some_open_modes_near_one(self, table2_result):
        near_one = [
            row for row in table2_result.rows if 0.9 <= row.ratio <= 1.3
        ]
        assert near_one, "expected some already-optimal rows, as in the paper"

    def test_reordered_matches_enumerated_best(self, table2_result):
        # The paper's third column: wherever exhaustive enumeration is
        # practical, the Markov-guided order should hit (or be within a
        # whisker of) the cheapest set-equivalent order.
        checked = 0
        for row in table2_result.rows:
            best = row.extras.get("best")
            if best is None:
                continue
            checked += 1
            assert row.reordered <= best * 1.05, row.label
        assert checked >= 6, "enumeration should be practical for most rows"


class TestBenchmarks:
    def test_reordering_pipeline(self, benchmark):
        database = family_tree.database()

        def pipeline():
            return Reorderer(database.copy()).reorder()

        program = benchmark(pipeline)
        assert program.database.defines(("grandmother", 2))

    def test_reordered_query_sweep(self, benchmark, table2_result):
        database = family_tree.database()
        program = Reorderer(database).reorder()
        mode = parse_mode_string("-+")
        version = program.version_name(("grandmother", 2), mode)
        queries = mode_queries(version, mode, family_tree.PERSONS)

        total = benchmark(count_calls, lambda: program.engine(), queries)
        assert total < 1000  # paper's reordered grandmother(-,+): 357 calls

    def test_original_query_sweep(self, benchmark):
        database = family_tree.database()
        mode = parse_mode_string("-+")
        queries = mode_queries("grandmother", mode, family_tree.PERSONS)

        total = benchmark(count_calls, lambda: Engine(database), queries)
        assert total > 1000  # the original pays heavily in this mode
