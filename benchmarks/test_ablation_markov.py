"""Ablation — matrix inversion vs closed-form chain evaluation.

The paper computes ``N = (I − Q)^{-1}`` with an external C routine; we
showed a closed form exists for both chain variants. This ablation
verifies agreement once more at benchmark scale and times both, since
the closed form is what makes A* node evaluation cheap.
"""

import pytest

from repro.markov.clause_model import evaluate_sequence
from repro.markov.goal_stats import GoalStats

GOALS = [
    GoalStats(cost=1.0, solutions=34.0, prob=1.0),
    GoalStats(cost=2.0, solutions=0.5, prob=0.5),
    GoalStats(cost=1.0, solutions=2.0, prob=0.9),
    GoalStats(cost=5.0, solutions=0.1, prob=0.1),
    GoalStats(cost=3.0, solutions=1.0, prob=0.8),
    GoalStats(cost=1.0, solutions=0.7, prob=0.7),
]


def test_agreement():
    closed = evaluate_sequence(GOALS, use_matrix=False)
    matrix = evaluate_sequence(GOALS, use_matrix=True)
    assert closed.total_cost == pytest.approx(matrix.total_cost, rel=1e-9)
    assert closed.p_success == pytest.approx(matrix.p_success, rel=1e-9)
    assert closed.single_cost == pytest.approx(matrix.single_cost, rel=1e-9)


def test_bench_closed_form(benchmark):
    result = benchmark(evaluate_sequence, GOALS, False)
    assert result.total_cost > 0


def test_bench_matrix(benchmark):
    result = benchmark(evaluate_sequence, GOALS, True)
    assert result.total_cost > 0
