"""Machine-readable reorder benchmark: cold vs incremental wall time.

Not a paper artefact: this is the perf-regression harness guarding the
reordering pipeline's incremental path. For each paper program it
times

* ``cold`` — a from-scratch :class:`~repro.reorder.system.Reorderer`
  run (fresh :class:`~repro.reorder.pipeline.AnalysisContext`, every
  analysis and per-predicate build computed), and
* ``incremental`` — one predicate replaced with identical clauses
  (bumping its generation mark) followed by a re-reorder against the
  retained context, so only the edited predicate's SCC and its
  transitive callers are rebuilt.

Usage::

    # Refresh the committed baseline after an intentional change:
    PYTHONPATH=src python benchmarks/reorder_bench.py --output BENCH_reorder.json

    # CI smoke gate — fail on >3x slowdown or any drift in the
    # deterministic cache counters:
    PYTHONPATH=src python benchmarks/reorder_bench.py \
        --check BENCH_reorder.json --tolerance 3.0

The JSON schema (``repro-reorder-bench/1``) stores, per program, the
measured wall times, the cold/incremental speedup ratio, and the
incremental run's cache counters (predicates total, dirty, affected,
version-build hits and misses). The counters are deterministic, so
``--check`` compares them exactly; timings are machine-dependent, so
they are compared as a ratio against ``--tolerance``.
"""

import argparse
import json
import platform
import sys
import time

from repro.programs import REGISTRY
from repro.prolog.database import Database
from repro.reorder import AnalysisContext, Reorderer
from repro.reorder.pipeline.context import BUILD_STAGE

SCHEMA = "repro-reorder-bench/1"

#: program name -> the predicate "edited" for the incremental run.
#: The edit replaces the predicate with identical clauses: output is
#: unchanged, but the generation mark moves, dirtying exactly that
#: predicate.
PROGRAMS = {
    "family_tree": ("wife", 2),
    "corporate": ("employee", 2),
    "meal": ("meal", 3),
    "geography": ("borders", 2),
}


def _touch(database, indicator):
    """Replace a predicate with its own clauses (a no-op edit that
    bumps the predicate's generation mark)."""
    database.replace_predicate(indicator, database.clauses(indicator))


def run_program(name, repeats):
    """Benchmark one program: cold runs, then edit-and-rereorder runs."""
    source = REGISTRY[name].source()
    edited = PROGRAMS[name]

    # Cold: fresh database + context every iteration.
    cold_times = []
    for _ in range(repeats):
        database = Database.from_source(source)
        start = time.perf_counter()
        Reorderer(database).reorder()
        cold_times.append(time.perf_counter() - start)

    # Incremental: one retained context; each iteration edits one
    # predicate and re-reorders, replaying every unaffected predicate.
    database = Database.from_source(source)
    context = AnalysisContext(database)
    Reorderer(database, context=context).reorder()  # warm the cache
    incremental_times = []
    for _ in range(repeats):
        _touch(database, edited)
        context.reset_counters()
        start = time.perf_counter()
        Reorderer(database, context=context).reorder()
        incremental_times.append(time.perf_counter() - start)

    counters = context.counters_record()
    cold = min(cold_times)
    incremental = min(incremental_times)
    return {
        "cold_seconds": round(cold, 6),
        "incremental_seconds": round(incremental, 6),
        "speedup": round(cold / incremental, 2) if incremental else 0.0,
        "counters": {
            "predicates": len(database.predicates()),
            "dirty": len(counters["dirty"]),
            "affected": len(counters["affected"]),
            "build_hits": counters["hits"].get(BUILD_STAGE, 0),
            "build_misses": counters["misses"].get(BUILD_STAGE, 0),
        },
    }


def run_all(repeats, names):
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "programs": {name: run_program(name, repeats) for name in names},
    }


def check(results, baseline, tolerance):
    """Compare a fresh run against the committed baseline.

    Returns a list of failure strings: empty means the gate passes.
    Wall times drift with the machine, so they fail only past
    ``tolerance``; cache counters are deterministic and must match
    exactly.
    """
    failures = []
    if baseline.get("schema") != SCHEMA:
        failures.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}"
            " (regenerate with --output)"
        )
        return failures
    for name, base in baseline.get("programs", {}).items():
        fresh = results["programs"].get(name)
        if fresh is None:
            failures.append(f"{name}: missing from this run")
            continue
        for key in ("cold_seconds", "incremental_seconds"):
            if fresh[key] > base[key] * tolerance:
                failures.append(
                    f"{name}: {key} {fresh[key]}s is >{tolerance}x above "
                    f"baseline {base[key]}s"
                )
        for key, expected in base["counters"].items():
            actual = fresh["counters"].get(key)
            if actual != expected:
                failures.append(
                    f"{name}: counters[{key}] = {actual} != baseline {expected}"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", metavar="PATH", help="write results as JSON to PATH"
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare against the baseline JSON at PATH; exit 1 on failure",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed wall-time regression factor for --check (default 3.0)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed iterations per program (best-of; default 3)",
    )
    parser.add_argument(
        "--program",
        action="append",
        choices=sorted(PROGRAMS),
        help="run only this program (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    names = args.program or sorted(PROGRAMS)
    results = run_all(args.repeats, names)
    for name in names:
        entry = results["programs"][name]
        counters = entry["counters"]
        print(
            f"{name:14s} cold={entry['cold_seconds'] * 1000:8.1f}ms  "
            f"incremental={entry['incremental_seconds'] * 1000:8.1f}ms  "
            f"x{entry['speedup']:<6} rebuilt {counters['build_misses']}"
            f"/{counters['predicates']} predicates"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check(results, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            return 1
        print(f"check against {args.check} passed (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
