"""Machine-readable engine benchmark: ops/sec + metrics counters.

Not a paper artefact: this is the perf-regression harness guarding the
clause-resolution hot path (the clause *tries* the paper's cost model
charges). Each workload pre-parses its query once, captures the
engine's deterministic metrics counters for a single execution, then
times repeated executions (parse excluded) to get a throughput figure.

Usage::

    # Refresh the committed baseline after an intentional perf change:
    PYTHONPATH=src python benchmarks/engine_bench.py --output BENCH_engine.json

    # CI smoke gate — fail on >2x throughput regression or any drift in
    # the deterministic counters:
    PYTHONPATH=src python benchmarks/engine_bench.py \
        --check BENCH_engine.json --tolerance 2.0

Workloads (all run on the default compiled engine):

``indexed_point_lookup``
    One fact out of 5000 via first-argument indexing — the best case.
``unindexed_point_lookup``
    The same lookup with indexing disabled: a full 5000-clause scan,
    i.e. the raw clause-try rate. Compiled fingerprints fast-reject
    4999 of the tries.
``deep_conjunction``
    A 24-goal flat conjunction of fact lookups — exercises the
    flattened goal-list loop that replaced the nested generator ladder.
``arith_chain``
    A 24-goal ``is/2`` chain — deep conjunction dominated by builtin
    dispatch rather than clause resolution.
``unindexed_join``
    A two-literal join over unindexed facts — clause tries plus real
    backtracking.

The JSON schema (``repro-engine-bench/1``) stores, per workload, the
measured ``ops_per_sec``, the number of solutions, and the engine
metrics charged by one execution. Counters are deterministic, so
``--check`` compares them exactly; throughput is machine-dependent, so
it is compared as a ratio against ``--tolerance``.
"""

import argparse
import json
import platform
import sys
import time

from repro.prolog import Engine, parse_term

SCHEMA = "repro-engine-bench/1"

#: Metrics counters stored per workload (the deterministic subset that
#: the seed engine and the compiled engine must agree on, plus the two
#: compiled-path counters themselves).
COUNTER_KEYS = (
    "calls",
    "unifications",
    "clause_entries",
    "backtracks",
    "skeleton_instantiations",
    "head_fast_rejects",
)

FACT_COUNT = 5_000
CHAIN_LENGTH = 24
JOIN_FACTS = 500


def _facts_engine(indexing):
    source = "\n".join(f"rec({i}, v{i % 97})." for i in range(FACT_COUNT))
    engine = Engine.from_source(source)
    engine.database.indexing = indexing
    return engine


def workload_indexed_point_lookup():
    return _facts_engine(True), parse_term("rec(2500, V)"), 1


def workload_unindexed_point_lookup():
    return _facts_engine(False), parse_term("rec(2500, V)"), 1


def workload_deep_conjunction():
    facts = "\n".join(f"step{i}(a, b)." for i in range(CHAIN_LENGTH))
    body = ", ".join(f"step{i}(a, B{i})" for i in range(CHAIN_LENGTH))
    return (
        Engine.from_source(f"{facts}\nchain :- {body}."),
        parse_term("chain"),
        1,
    )


def workload_arith_chain():
    body = ", ".join(f"X{i} is {i} + 1" for i in range(CHAIN_LENGTH))
    return (
        Engine.from_source(f"chain(X) :- {body}, X = done."),
        parse_term("chain(X)"),
        1,
    )


def workload_unindexed_join():
    source = "\n".join(f"edge({i}, {(i + 1) % JOIN_FACTS})." for i in range(JOIN_FACTS))
    source += "\njoin(A, C) :- edge(A, B), edge(B, C).\n"
    engine = Engine.from_source(source)
    engine.database.indexing = False
    return engine, parse_term("join(1, C)"), 1


WORKLOADS = {
    "indexed_point_lookup": workload_indexed_point_lookup,
    "unindexed_point_lookup": workload_unindexed_point_lookup,
    "deep_conjunction": workload_deep_conjunction,
    "arith_chain": workload_arith_chain,
    "unindexed_join": workload_unindexed_join,
}


def run_workload(name, min_seconds):
    """Run one workload: counters from a single pass, then a timing loop."""
    engine, goal, expected = WORKLOADS[name]()

    before = engine.metrics.snapshot()
    solutions = sum(1 for _ in engine.solve(goal))
    charged = engine.metrics.snapshot() - before
    if solutions != expected:
        raise SystemExit(
            f"{name}: expected {expected} solutions, got {solutions}"
        )
    counters = {key: getattr(charged, key) for key in COUNTER_KEYS}

    # Warm, then time whole repetitions until min_seconds has elapsed.
    runs = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while True:
        for _ in engine.solve(goal):
            pass
        runs += 1
        now = time.perf_counter()
        if now >= deadline:
            break
    return {
        "ops_per_sec": round(runs / (now - start), 1),
        "solutions": solutions,
        "metrics": counters,
    }


def run_all(min_seconds, names):
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "workloads": {
            name: run_workload(name, min_seconds) for name in names
        },
    }


def check(results, baseline, tolerance):
    """Compare a fresh run against the committed baseline.

    Returns a list of failure strings: empty means the gate passes.
    Throughput may drift with the machine, so it fails only past
    ``tolerance``; metrics counters are deterministic and must match
    exactly.
    """
    failures = []
    if baseline.get("schema") != SCHEMA:
        failures.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}"
            " (regenerate with --output)"
        )
        return failures
    for name, base in baseline.get("workloads", {}).items():
        fresh = results["workloads"].get(name)
        if fresh is None:
            failures.append(f"{name}: missing from this run")
            continue
        base_ops = base["ops_per_sec"]
        fresh_ops = fresh["ops_per_sec"]
        if fresh_ops * tolerance < base_ops:
            failures.append(
                f"{name}: {fresh_ops} ops/s is >{tolerance}x below "
                f"baseline {base_ops} ops/s"
            )
        if fresh["solutions"] != base["solutions"]:
            failures.append(
                f"{name}: {fresh['solutions']} solutions != baseline "
                f"{base['solutions']}"
            )
        for key, expected in base["metrics"].items():
            actual = fresh["metrics"].get(key)
            if actual != expected:
                failures.append(
                    f"{name}: metrics[{key}] = {actual} != baseline {expected}"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", metavar="PATH", help="write results as JSON to PATH"
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare against the baseline JSON at PATH; exit 1 on failure",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed throughput regression factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.4,
        help="timing-loop duration per workload (default 0.4)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        help="run only this workload (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    names = args.workload or sorted(WORKLOADS)
    results = run_all(args.min_seconds, names)
    for name in names:
        entry = results["workloads"][name]
        counters = entry["metrics"]
        print(
            f"{name:26s} {entry['ops_per_sec']:>10.1f} ops/s  "
            f"unifications={counters['unifications']} "
            f"fast_rejects={counters['head_fast_rejects']}"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check(results, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            return 1
        print(f"check against {args.check} passed (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
