"""Machine-readable engine benchmark: ops/sec + metrics counters.

Not a paper artefact: this is the perf-regression harness guarding the
clause-resolution hot path (the clause *tries* the paper's cost model
charges). Each workload pre-parses its query once, captures the
engine's deterministic metrics counters for a single execution, then
times repeated executions (parse excluded) to get a throughput figure.

Usage::

    # Refresh the committed baseline after an intentional perf change:
    PYTHONPATH=src python benchmarks/engine_bench.py --output BENCH_engine.json

    # CI smoke gate — fail on >2x throughput regression or any drift in
    # the deterministic counters:
    PYTHONPATH=src python benchmarks/engine_bench.py \
        --check BENCH_engine.json --tolerance 2.0

Workloads (all run on the default compiled engine):

``indexed_point_lookup``
    One fact out of 5000 via first-argument indexing — the best case.
``unindexed_point_lookup``
    The same lookup with indexing disabled: a full 5000-clause scan,
    i.e. the raw clause-try rate. Compiled fingerprints fast-reject
    4999 of the tries.
``deep_conjunction``
    A 24-goal flat conjunction of fact lookups — exercises the
    flattened goal-list loop that replaced the nested generator ladder.
``arith_chain``
    A 24-goal ``is/2`` chain — deep conjunction dominated by builtin
    dispatch rather than clause resolution.
``unindexed_join``
    A two-literal join over unindexed facts — clause tries plus real
    backtracking. The engine's bulk scan plans short-circuit the
    fingerprint rejects while charging identical counters.
``unindexed_join_legacy``
    The same join with scan plans disabled: the pre-plan per-clause
    loop. Its counters must be byte-identical to ``unindexed_join``
    (the plan is a pure speedup), which ``--check`` enforces in-run.
``indexed_join``
    The same join with multi-argument indexing on — backtracking all
    but disappears (``--check`` demands a >=10x drop in-run).
``bound_second_arg_lookup``
    A lookup bound only in the *second* argument — the case
    first-argument indexing cannot help; the multi-argument index
    probes the position-1 buckets instead of scanning.
``datalog_closure``
    Transitive closure on a cycle, evaluated bottom-up
    (``eval_strategy="bottomup"``) on a fresh engine per repetition so
    every repetition pays the full semi-naive materialization.
``datalog_closure_tabled``
    The same closure on the tabled top-down engine, also fresh per
    repetition — the comparator for the in-run gate that bottom-up
    materialization beats tabled SLD by >=3x.

The JSON schema (``repro-engine-bench/1``) stores, per workload, the
measured ``ops_per_sec``, the number of solutions, and the engine
metrics charged by one execution. Counters are deterministic, so
``--check`` compares them exactly; throughput is machine-dependent, so
it is compared as a ratio against ``--tolerance``. ``--check`` also
applies the machine-independent *relative* gates above, which compare
workloads of the same fresh run against each other.
"""

import argparse
import json
import platform
import sys
import time

from repro.prolog import Database, Engine, parse_term

SCHEMA = "repro-engine-bench/1"

#: Metrics counters stored per workload (the deterministic subset that
#: the seed engine and the compiled engine must agree on, plus the two
#: compiled-path counters themselves).
COUNTER_KEYS = (
    "calls",
    "unifications",
    "clause_entries",
    "backtracks",
    "skeleton_instantiations",
    "head_fast_rejects",
)

FACT_COUNT = 5_000
CHAIN_LENGTH = 24
JOIN_FACTS = 500
CLOSURE_NODES = 60


def _facts_engine(indexing):
    source = "\n".join(f"rec({i}, v{i % 97})." for i in range(FACT_COUNT))
    engine = Engine.from_source(source)
    engine.database.indexing = indexing
    return engine


def workload_indexed_point_lookup():
    return _facts_engine(True), parse_term("rec(2500, V)"), 1


def workload_unindexed_point_lookup():
    return _facts_engine(False), parse_term("rec(2500, V)"), 1


def _deep_conjunction_source():
    facts = "\n".join(f"step{i}(a, b)." for i in range(CHAIN_LENGTH))
    body = ", ".join(f"step{i}(a, B{i})" for i in range(CHAIN_LENGTH))
    return f"{facts}\nchain :- {body}."


def workload_deep_conjunction():
    return (
        Engine.from_source(_deep_conjunction_source()),
        parse_term("chain"),
        1,
    )


def workload_deep_conjunction_vm():
    return (
        Engine.from_source(_deep_conjunction_source(), vm=True),
        parse_term("chain"),
        1,
    )


def _arith_chain_source():
    body = ", ".join(f"X{i} is {i} + 1" for i in range(CHAIN_LENGTH))
    return f"chain(X) :- {body}, X = done."


def workload_arith_chain():
    return (
        Engine.from_source(_arith_chain_source()),
        parse_term("chain(X)"),
        1,
    )


def workload_arith_chain_vm():
    return (
        Engine.from_source(_arith_chain_source(), vm=True),
        parse_term("chain(X)"),
        1,
    )


def _builtin_heavy_source():
    # Four deterministic builtin goals (one binding arith, three
    # comparisons) per chain link: isolates builtin-op dispatch cost —
    # the generator path boxes each goal in its own generator, the VM
    # runs the whole chain as inline DET ops.
    links = []
    for i in range(CHAIN_LENGTH):
        links.append(
            f"X{i} is {i} * 3 + 1, X{i} >= 1, X{i} =\\= -1, X{i} < 100"
        )
    return f"chain(X) :- {', '.join(links)}, X = done."


def workload_builtin_heavy():
    return (
        Engine.from_source(_builtin_heavy_source()),
        parse_term("chain(X)"),
        1,
    )


def workload_builtin_heavy_vm():
    return (
        Engine.from_source(_builtin_heavy_source(), vm=True),
        parse_term("chain(X)"),
        1,
    )


def _join_engine(indexing, scan_plans=True):
    source = "\n".join(f"edge({i}, {(i + 1) % JOIN_FACTS})." for i in range(JOIN_FACTS))
    source += "\njoin(A, C) :- edge(A, B), edge(B, C).\n"
    engine = Engine.from_source(source)
    engine.database.indexing = indexing
    engine.database.scan_plans = scan_plans
    return engine


def workload_unindexed_join():
    return _join_engine(False), parse_term("join(1, C)"), 1


def workload_unindexed_join_legacy():
    return _join_engine(False, scan_plans=False), parse_term("join(1, C)"), 1


def workload_indexed_join():
    return _join_engine(True), parse_term("join(1, C)"), 1


def workload_bound_second_arg_lookup():
    # rec(I, v{I mod 97}): position 1 holds 97 distinct values, so the
    # multi-argument index narrows 5000 clauses to ~52 candidates.
    expected = sum(1 for i in range(FACT_COUNT) if i % 97 == 42)
    return _facts_engine(True), parse_term("rec(V, v42)"), expected


def _closure_database():
    # Two out-edges per node: every closure fact is derivable many
    # ways, so duplicate derivations dominate — cheap dict-dedup
    # bottom-up, full SLD resolution machinery per duplicate top-down.
    source = "\n".join(
        f"edge({i}, {(i + d) % CLOSURE_NODES})."
        for i in range(CLOSURE_NODES)
        for d in (1, 2)
    )
    source += "\npath(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n"
    return Database.from_source(source)


def workload_datalog_closure():
    database = _closure_database()
    # A fresh engine per repetition: the bottom-up dispatcher caches
    # materialized relations per engine, so this times the full
    # semi-naive fixpoint every time, not one fixpoint plus probes.
    factory = lambda: Engine(database, eval_strategy="bottomup")
    return factory, parse_term("path(0, X)"), CLOSURE_NODES, "fresh_engine"


def workload_datalog_closure_tabled():
    database = _closure_database()
    # Tables are engine-private too, so the comparator pays the full
    # tabled top-down evaluation per repetition — like for like.
    factory = lambda: Engine(database, table_all=True)
    return factory, parse_term("path(0, X)"), CLOSURE_NODES, "fresh_engine"


WORKLOADS = {
    "indexed_point_lookup": workload_indexed_point_lookup,
    "unindexed_point_lookup": workload_unindexed_point_lookup,
    "deep_conjunction": workload_deep_conjunction,
    "deep_conjunction_vm": workload_deep_conjunction_vm,
    "arith_chain": workload_arith_chain,
    "arith_chain_vm": workload_arith_chain_vm,
    "builtin_heavy": workload_builtin_heavy,
    "builtin_heavy_vm": workload_builtin_heavy_vm,
    "unindexed_join": workload_unindexed_join,
    "unindexed_join_legacy": workload_unindexed_join_legacy,
    "indexed_join": workload_indexed_join,
    "bound_second_arg_lookup": workload_bound_second_arg_lookup,
    "datalog_closure": workload_datalog_closure,
    "datalog_closure_tabled": workload_datalog_closure_tabled,
}


def run_workload(name, min_seconds):
    """Run one workload: counters from a single pass, then a timing loop.

    A workload may return ``(engine, goal, expected)`` for the usual
    reuse-one-engine loop, or ``(factory, goal, expected,
    "fresh_engine")`` to construct a fresh engine per repetition (the
    materialization/tabling workloads, whose caches would otherwise
    make every repetition after the first a no-op).
    """
    spec = WORKLOADS[name]()
    factory = None
    if len(spec) == 4:
        factory, goal, expected, _ = spec
        engine = factory()
    else:
        engine, goal, expected = spec

    before = engine.metrics.snapshot()
    solutions = sum(1 for _ in engine.solve(goal))
    charged = engine.metrics.snapshot() - before
    if solutions != expected:
        raise SystemExit(
            f"{name}: expected {expected} solutions, got {solutions}"
        )
    counters = {key: getattr(charged, key) for key in COUNTER_KEYS}

    # Warm, then time whole repetitions until min_seconds has elapsed.
    runs = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while True:
        if factory is not None:
            engine = factory()
        for _ in engine.solve(goal):
            pass
        runs += 1
        now = time.perf_counter()
        if now >= deadline:
            break
    return {
        "ops_per_sec": round(runs / (now - start), 1),
        "solutions": solutions,
        "metrics": counters,
    }


def run_all(min_seconds, names):
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "workloads": {
            name: run_workload(name, min_seconds) for name in names
        },
    }


def check(results, baseline, tolerance):
    """Compare a fresh run against the committed baseline.

    Returns a list of failure strings: empty means the gate passes.
    Throughput may drift with the machine, so it fails only past
    ``tolerance``; metrics counters are deterministic and must match
    exactly.
    """
    failures = []
    if baseline.get("schema") != SCHEMA:
        failures.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}"
            " (regenerate with --output)"
        )
        return failures
    for name, base in baseline.get("workloads", {}).items():
        fresh = results["workloads"].get(name)
        if fresh is None:
            failures.append(f"{name}: missing from this run")
            continue
        base_ops = base["ops_per_sec"]
        fresh_ops = fresh["ops_per_sec"]
        if fresh_ops * tolerance < base_ops:
            failures.append(
                f"{name}: {fresh_ops} ops/s is >{tolerance}x below "
                f"baseline {base_ops} ops/s"
            )
        if fresh["solutions"] != base["solutions"]:
            failures.append(
                f"{name}: {fresh['solutions']} solutions != baseline "
                f"{base['solutions']}"
            )
        for key, expected in base["metrics"].items():
            actual = fresh["metrics"].get(key)
            if actual != expected:
                failures.append(
                    f"{name}: metrics[{key}] = {actual} != baseline {expected}"
                )
    return failures


def relative_gates(results):
    """Machine-independent gates comparing workloads of one fresh run.

    Unlike the baseline comparison (whose throughput leg depends on the
    machine that wrote the baseline), these ratios pit two workloads of
    the *same* run against each other, so they hold anywhere:

    - scan plans must make ``unindexed_join`` >=5x faster than the
      per-clause-loop ``unindexed_join_legacy`` while charging
      byte-identical counters (the optimization is invisible to the
      cost model);
    - multi-argument indexing must cut ``indexed_join`` backtracks to
      <=1/10 of the unindexed scan's;
    - bottom-up ``datalog_closure`` must beat the tabled top-down
      comparator by >=3x, with identical answer counts;
    - the bytecode VM must run ``deep_conjunction``, ``arith_chain``
      and ``builtin_heavy`` >=1.5x faster than the generator path on
      the same program, with byte-identical counters and solutions.

    Gates whose workloads were not part of this run are skipped, so
    ``--workload``-filtered runs still check cleanly.
    """
    failures = []
    workloads = results["workloads"]

    join = workloads.get("unindexed_join")
    legacy = workloads.get("unindexed_join_legacy")
    if join and legacy:
        if join["ops_per_sec"] < 5.0 * legacy["ops_per_sec"]:
            failures.append(
                f"unindexed_join: {join['ops_per_sec']} ops/s is not >=5x "
                f"the legacy per-clause loop ({legacy['ops_per_sec']} ops/s)"
            )
        if join["metrics"] != legacy["metrics"]:
            failures.append(
                f"unindexed_join: counters {join['metrics']} diverge from "
                f"legacy loop {legacy['metrics']} (scan plans must be "
                "counter-neutral)"
            )

    indexed = workloads.get("indexed_join")
    if indexed and join:
        if indexed["metrics"]["backtracks"] * 10 > join["metrics"]["backtracks"]:
            failures.append(
                f"indexed_join: {indexed['metrics']['backtracks']} backtracks "
                f"is not <=1/10 of unindexed "
                f"({join['metrics']['backtracks']})"
            )

    for base_name in ("deep_conjunction", "arith_chain", "builtin_heavy"):
        base = workloads.get(base_name)
        vm = workloads.get(f"{base_name}_vm")
        if base and vm:
            if vm["ops_per_sec"] < 1.5 * base["ops_per_sec"]:
                failures.append(
                    f"{base_name}_vm: {vm['ops_per_sec']} ops/s is not "
                    f">=1.5x the generator path "
                    f"({base['ops_per_sec']} ops/s)"
                )
            if vm["metrics"] != base["metrics"]:
                failures.append(
                    f"{base_name}_vm: counters {vm['metrics']} diverge from "
                    f"the generator path {base['metrics']} (the VM must be "
                    "counter-neutral)"
                )
            if vm["solutions"] != base["solutions"]:
                failures.append(
                    f"{base_name}_vm: {vm['solutions']} solutions != "
                    f"{base['solutions']} on the generator path"
                )

    closure = workloads.get("datalog_closure")
    tabled = workloads.get("datalog_closure_tabled")
    if closure and tabled:
        if closure["ops_per_sec"] < 3.0 * tabled["ops_per_sec"]:
            failures.append(
                f"datalog_closure: {closure['ops_per_sec']} ops/s bottom-up "
                f"is not >=3x tabled top-down "
                f"({tabled['ops_per_sec']} ops/s)"
            )
        if closure["solutions"] != tabled["solutions"]:
            failures.append(
                f"datalog_closure: {closure['solutions']} bottom-up answers "
                f"!= {tabled['solutions']} tabled answers"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", metavar="PATH", help="write results as JSON to PATH"
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="compare against the baseline JSON at PATH; exit 1 on failure",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed throughput regression factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.4,
        help="timing-loop duration per workload (default 0.4)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        choices=sorted(WORKLOADS),
        help="run only this workload (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    names = args.workload or sorted(WORKLOADS)
    results = run_all(args.min_seconds, names)
    for name in names:
        entry = results["workloads"][name]
        counters = entry["metrics"]
        print(
            f"{name:26s} {entry['ops_per_sec']:>10.1f} ops/s  "
            f"unifications={counters['unifications']} "
            f"fast_rejects={counters['head_fast_rejects']}"
        )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check(results, baseline, args.tolerance)
        failures += relative_gates(results)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            return 1
        print(f"check against {args.check} passed (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
