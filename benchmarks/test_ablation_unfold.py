"""Ablation — unfolding before reordering (§VIII).

"Unfolding of goals might greatly increase the possibilities for
reordering, especially when clauses of a program are short." We build a
program of short wrapper clauses whose reorderable work only becomes
visible after inlining, and compare reordering with and without the
unfold sweeps.
"""

import pytest

from repro.prolog import Database, Engine
from repro.reorder.system import ReorderOptions, Reorderer

# Short clauses: each rule body has at most two goals, so the plain
# reorderer has almost nothing to permute; after unfolding, candidates
# line up in one clause and the cheap test can move forward.
SOURCE = """
item(1). item(2). item(3). item(4). item(5). item(6). item(7). item(8).
costly(X) :- item(X).
cheap(4).
stage1(X) :- costly(X).
stage2(X) :- stage1(X), accept(X).
accept(X) :- cheap(X).
answer(X) :- stage2(X).
"""

QUERY = "answer(X)"


def _calls(engine_factory, query):
    _, metrics = engine_factory().run(query)
    return metrics.calls


@pytest.fixture(scope="module")
def variants():
    database = Database.from_source(SOURCE)
    plain = Reorderer(Database.from_source(SOURCE)).reorder()
    unfolded = Reorderer(
        Database.from_source(SOURCE), ReorderOptions(unfold_rounds=3)
    ).reorder()
    return database, plain, unfolded


class TestShape:
    def test_equivalent(self, variants):
        database, plain, unfolded = variants
        reference = sorted(s.key() for s in Engine(database).ask(QUERY))
        assert sorted(s.key() for s in plain.engine().ask(QUERY)) == reference
        assert sorted(s.key() for s in unfolded.engine().ask(QUERY)) == reference

    def test_unfolding_enables_more_reordering(self, variants):
        database, plain, unfolded = variants
        original = _calls(lambda: Engine(database), QUERY)
        with_plain = _calls(plain.engine, QUERY)
        with_unfold = _calls(unfolded.engine, QUERY)
        print(
            f"\nablation: unfold — original {original}, reordered {with_plain}, "
            f"unfold+reordered {with_unfold}"
        )
        # Unfolding must not hurt, and here it strictly helps: the
        # wrapper hops disappear and the cheap test moves first.
        assert with_unfold < with_plain
        assert with_unfold < original


class TestBenchmarks:
    def test_bench_plain_reorder(self, benchmark):
        program = benchmark(
            lambda: Reorderer(Database.from_source(SOURCE)).reorder()
        )
        assert program.database.predicates()

    def test_bench_unfold_reorder(self, benchmark):
        program = benchmark(
            lambda: Reorderer(
                Database.from_source(SOURCE), ReorderOptions(unfold_rounds=3)
            ).reorder()
        )
        assert program.database.predicates()
