"""Table IV — p58, meal, team, kmbench.

Shape criteria (paper: p58 1.55; meal 1.06/1.06; team 3.47/3.87;
kmbench 1.14): modest gains on mostly-deterministic programs — these
violate the paper's §VII criteria (mobility, nondeterminism, diverse
costs) — with team gaining the most.
"""

import pytest

from repro.programs import kmbench, meal, p58, team
from repro.reorder.system import Reorderer


class TestShape:
    def test_p58_band(self, table4_result):
        assert 1.2 < table4_result.row("p58(+,+)").ratio < 3.0

    def test_meal_near_one(self, table4_result):
        assert 0.95 <= table4_result.row("meal(-,-,-)").ratio < 1.5
        assert 0.95 <= table4_result.row("meal(+,+,-)").ratio < 1.5

    def test_team_gains_most(self, table4_result):
        team_ratio = table4_result.row("team(-,-)").ratio
        assert team_ratio > 2.0
        assert team_ratio == max(row.ratio for row in table4_result.rows)
        assert table4_result.row("team(+,+)").ratio > 1.1

    def test_kmbench_modest_gain(self, table4_result):
        assert 1.05 < table4_result.row("kmbench").ratio < 3.0

    def test_no_slowdowns(self, table4_result):
        for row in table4_result.rows:
            assert row.ratio >= 0.95, row.label


class TestBenchmarks:
    @pytest.mark.parametrize(
        "module", [p58, meal, team, kmbench],
        ids=["p58", "meal", "team", "kmbench"],
    )
    def test_reordering_pipeline(self, benchmark, module):
        database = module.database()
        program = benchmark(lambda: Reorderer(database.copy()).reorder())
        assert program.database.predicates()

    def test_kmbench_run(self, benchmark, table4_result):
        database = kmbench.database()
        program = Reorderer(database).reorder()
        engine_factory = program.engine

        def run():
            engine = engine_factory()
            assert engine.succeeds("kmbench")
            return engine.metrics.calls

        calls = benchmark(run)
        assert calls > 0
