"""Admission controller: bounded concurrency, bounded queue, FIFO
grants, immediate shed, cancellation safety."""

import asyncio

from repro.serve import AdmissionController


def run(coroutine):
    return asyncio.run(coroutine)


class TestSlots:
    def test_admits_up_to_max_inflight_without_queueing(self):
        async def scenario():
            admission = AdmissionController(max_inflight=3, max_queue=2)
            decisions = [await admission.acquire() for _ in range(3)]
            assert all(d.admitted and not d.queued for d in decisions)
            assert admission.inflight == 3
            assert admission.queued == 0

        run(scenario())

    def test_release_frees_a_slot(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=0)
            await admission.acquire()
            admission.release()
            decision = await admission.acquire()
            assert decision.admitted
            assert admission.completed_total == 1

        run(scenario())

    def test_peak_inflight_high_water_mark(self):
        async def scenario():
            admission = AdmissionController(max_inflight=4, max_queue=0)
            for _ in range(4):
                await admission.acquire()
            for _ in range(4):
                admission.release()
            await admission.acquire()
            assert admission.peak_inflight == 4

        run(scenario())


class TestQueueing:
    def test_saturated_arrival_waits_then_runs(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=2)
            await admission.acquire()
            waiter = asyncio.ensure_future(admission.acquire())
            await asyncio.sleep(0)
            assert not waiter.done()
            assert admission.queued == 1
            admission.release()
            decision = await waiter
            assert decision.admitted and decision.queued

        run(scenario())

    def test_grants_are_fifo(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=4)
            await admission.acquire()
            order = []

            async def wait(tag):
                await admission.acquire()
                order.append(tag)

            waiters = [asyncio.ensure_future(wait(tag)) for tag in "abc"]
            await asyncio.sleep(0)
            for _ in range(3):
                admission.release()
                await asyncio.sleep(0)
            await asyncio.gather(*waiters)
            assert order == ["a", "b", "c"]

        run(scenario())

    def test_full_queue_sheds_immediately(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=1)
            await admission.acquire()
            queued = asyncio.ensure_future(admission.acquire())
            await asyncio.sleep(0)
            decision = await admission.acquire()  # returns at once
            assert not decision.admitted
            assert decision.queue_depth == 1
            assert admission.rejected_total == 1
            admission.release()
            assert (await queued).admitted

        run(scenario())

    def test_zero_queue_rejects_at_capacity(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=0)
            await admission.acquire()
            decision = await admission.acquire()
            assert not decision.admitted

        run(scenario())


class TestCancellation:
    def test_cancelled_waiter_is_skipped_at_grant_time(self):
        async def scenario():
            admission = AdmissionController(max_inflight=1, max_queue=4)
            await admission.acquire()
            doomed = asyncio.ensure_future(admission.acquire())
            survivor = asyncio.ensure_future(admission.acquire())
            await asyncio.sleep(0)
            doomed.cancel()
            await asyncio.sleep(0)
            admission.release()
            decision = await survivor
            assert decision.admitted
            assert admission.inflight == 1

        run(scenario())

    def test_counters_snapshot_shape(self):
        async def scenario():
            admission = AdmissionController(max_inflight=2, max_queue=3)
            await admission.acquire()
            snapshot = admission.snapshot()
            assert snapshot == {
                "inflight": 1, "queued": 0, "peak_inflight": 1,
                "max_inflight": 2, "max_queue": 3,
                "admitted": 1, "rejected": 0, "completed": 0,
            }

        run(scenario())
