"""Snapshot store semantics: build off to the side, publish atomically,
never mutate a published generation."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog import Engine
from repro.serve import SnapshotStore


def count(database, query):
    return Engine(database).count_solutions(query)


@pytest.fixture()
def store(database):
    return SnapshotStore(database)


class TestBuildAndPublish:
    def test_initial_generation_is_zero(self, store):
        assert store.generation == 0
        assert store.current.generation == 0

    def test_assert_builds_next_generation(self, store):
        result = store.build(store.current, asserts=["parent(e, f)."])
        assert result.asserted == 1
        assert result.retracted == 0
        assert result.snapshot.generation == 1
        # Not yet published: readers still see generation 0.
        assert store.generation == 0
        store.publish(result)
        assert store.generation == 1

    def test_published_database_reflects_update(self, store):
        base_count = count(store.current.database, "parent(X, Y)")
        store.publish(store.build(store.current, asserts=["parent(e, f)."]))
        assert count(store.current.database, "parent(X, Y)") == base_count + 1

    def test_base_snapshot_is_untouched_by_the_build(self, store):
        base = store.current
        before = count(base.database, "parent(X, Y)")
        store.publish(
            store.build(base, asserts=["parent(x, y). parent(y, z)."])
        )
        # The pinned generation-0 database never changes.
        assert count(base.database, "parent(X, Y)") == before
        assert base.generation == 0

    def test_retract_by_indicator_removes_whole_predicate(self, store):
        from repro.errors import ExistenceError

        result = store.build(store.current, retracts=["parent/2"])
        assert result.retracted == 4
        store.publish(result)
        assert ("parent", 2) not in store.current.database.predicates()
        # Calling the removed predicate is now an existence error, like
        # any other unknown predicate.
        with pytest.raises(ExistenceError):
            count(store.current.database, "parent(X, Y)")

    def test_retract_by_clause_removes_structural_matches(self, store):
        result = store.build(store.current, retracts=["parent(a, b)."])
        assert result.retracted == 1
        store.publish(result)
        assert count(store.current.database, "parent(a, X)") == 0
        assert count(store.current.database, "parent(b, X)") == 1

    def test_retract_matching_nothing_counts_zero(self, store):
        result = store.build(store.current, retracts=["parent(zz, qq)."])
        assert result.retracted == 0
        store.publish(result)
        assert store.generation == 1

    def test_mixed_update_applies_retracts_then_asserts(self, store):
        result = store.build(
            store.current,
            asserts=["parent(a, b2)."],
            retracts=["parent(a, b)."],
        )
        store.publish(result)
        assert count(store.current.database, "parent(a, X)") == 1

    def test_syntax_error_leaves_current_generation_standing(self, store):
        with pytest.raises(PrologSyntaxError):
            store.build(store.current, asserts=["parent(broken"])
        assert store.generation == 0

    def test_stale_publish_is_rejected_loudly(self, store):
        base = store.current
        first = store.build(base, asserts=["parent(e, f)."])
        second = store.build(base, asserts=["parent(e, g)."])
        store.publish(first)
        with pytest.raises(RuntimeError, match="stale"):
            store.publish(second)
        # The winning update is still in place.
        assert store.generation == 1

    def test_generations_chain(self, store):
        for n in range(3):
            store.publish(
                store.build(store.current, asserts=[f"extra{n}(x)."])
            )
        assert store.generation == 3
        marks = store.current.marks
        assert ("extra2", 1) in marks


class TestSnapshotHandle:
    def test_marks_frozen_at_publication(self, store):
        base = store.current
        frozen = dict(base.marks)
        store.publish(store.build(base, asserts=["parent(q, r)."]))
        # The pinned handle's watermark map is the one captured at its
        # own publication, untouched by the later generation.
        assert base.marks == frozen
        assert ("parent", 2) in base.marks

    def test_queries_on_old_and_new_snapshots_coexist(self, store):
        old = store.current
        store.publish(store.build(old, asserts=["parent(e, f)."]))
        new = store.current
        assert count(old.database, "anc(a, X)") == 4
        assert count(new.database, "anc(a, X)") == 5
        # Interleave again to prove neither engine run disturbed either.
        assert count(old.database, "anc(a, X)") == 4
        assert count(new.database, "anc(a, X)") == 5
