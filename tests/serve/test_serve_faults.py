"""The serve fault sites: wedged or exploding requests are contained
to their own response, at their own deadline.

``serve.request`` fires in the server process (thread backend);
``serve.worker`` fires inside a ``--backend=process`` worker, where
``hang`` wedges non-cooperatively (SIGKILL territory) and ``raise`` /
``exhaust`` must still map to single clean responses across the pipe.
The crash kind's full ladder lives in test_process_executor.py."""

import threading
import time

from repro.robustness import faults
from repro.serve import ServeClient


class TestHungRequest:
    def test_hang_is_answered_at_the_deadline_not_after_the_hang(
        self, server_factory
    ):
        """A request wedged in a 3s hang, under a 0.3s deadline, must be
        answered by the watchdog at ~deadline+grace — and a concurrent
        request on another connection must complete normally while the
        wedged thread is still sleeping."""
        faults.install_from_spec("serve.request:hang:3.0@1")
        thread = server_factory(
            max_inflight=4, default_timeout=0.3, grace=0.2, drain_timeout=0.5
        )
        address = thread.server.address
        wedged = {}

        def victim():
            with ServeClient(address) as client:
                started = time.perf_counter()
                wedged["response"] = client.query("anc(a, X)")
                wedged["elapsed"] = time.perf_counter() - started

        runner = threading.Thread(target=victim)
        runner.start()
        time.sleep(0.1)  # the victim is inside the injected hang now
        with ServeClient(address) as client:
            healthy = client.query("anc(a, X)")
        assert healthy["status"] == "ok"
        assert healthy["count"] == 4
        runner.join(timeout=10.0)
        assert wedged["response"]["status"] == "timeout"
        assert "abandoned" in wedged["response"]["error"]
        # Answered at deadline + grace, far before the 3s hang ends.
        assert wedged["elapsed"] < 2.0
        # The plan actually tripped (once: the healthy request ran with
        # the rule already consumed).
        assert faults.ACTIVE.trips == [("serve.request", "hang")]

    def test_watchdog_emits_a_cancelled_event_and_frees_the_slot(
        self, server_factory
    ):
        faults.install_from_spec("serve.request:hang:3.0@1")
        thread = server_factory(
            max_inflight=1, max_queue=0, default_timeout=0.3, grace=0.2,
            drain_timeout=0.5,
        )
        address = thread.server.address
        with ServeClient(address) as client:
            assert client.query("anc(a, X)")["status"] == "timeout"
            # The wedged thread still sleeps, but its admission slot was
            # released with the response: the next request runs now.
            assert client.query("anc(a, X)")["status"] == "ok"
        events = [e for e in thread.server.events if e.kind == "request"]
        assert [e.action for e in events if e.status == "timeout"] == [
            "cancelled"
        ]
        assert thread.server.admission.inflight == 0


class TestRaisingRequest:
    def test_injected_raise_is_one_error_response(self, server_factory):
        faults.install_from_spec("serve.request:raise@1")
        with ServeClient(server_factory().server.address) as client:
            response = client.query("anc(a, X)")
            assert response["status"] == "error"
            assert "injected fault" in response["error"]
            # The connection and the server survive.
            assert client.query("anc(a, X)")["status"] == "ok"

    def test_injected_exhaustion_maps_to_exhausted(self, server_factory):
        faults.install_from_spec("serve.request:exhaust@1")
        with ServeClient(server_factory().server.address) as client:
            response = client.query("anc(a, X)")
            assert response["status"] == "exhausted"
            assert client.query("anc(a, X)")["status"] == "ok"

    def test_site_is_in_the_catalog(self):
        assert "serve.request" in faults.FAULT_SITES


class TestWorkerFaultSite:
    """The process-backend cells: faults inside a worker process.

    Plans are installed before the server starts (workers fork at pool
    construction and inherit them); triggers count per worker process.
    """

    def test_worker_raise_is_one_error_response(self, server_factory):
        faults.install_from_spec("serve.worker:raise@1")
        thread = server_factory(backend="process", workers=1, max_inflight=1)
        with ServeClient(thread.server.address) as client:
            response = client.query("anc(a, X)")
            assert response["status"] == "error"
            assert "injected fault at serve.worker" in response["error"]
            # The worker survives its own exception (no kill, no
            # respawn) and keeps serving.
            assert client.query("anc(a, X)")["status"] == "ok"
        stats = thread.server.stats()["backend"]
        assert stats["kills"] == 0 and stats["crashes"] == 0

    def test_worker_exhaustion_maps_to_exhausted(self, server_factory):
        faults.install_from_spec("serve.worker:exhaust@1")
        thread = server_factory(backend="process", workers=1, max_inflight=1)
        with ServeClient(thread.server.address) as client:
            response = client.query("anc(a, X)")
            assert response["status"] == "exhausted"
            assert client.query("anc(a, X)")["status"] == "ok"

    def test_worker_hang_is_answered_at_the_deadline(self, server_factory):
        """The process-backend twin of the serve.request hang test —
        except here the wedge is *killed*, not abandoned."""
        faults.install_from_spec("serve.worker:hang:30@1")
        thread = server_factory(
            backend="process", workers=1, max_inflight=1,
            default_timeout=0.3, grace=0.2, drain_timeout=0.5,
        )
        with ServeClient(thread.server.address) as client:
            started = time.perf_counter()
            response = client.query("anc(a, X)")
            elapsed = time.perf_counter() - started
            assert response["status"] == "timeout"
            assert "worker killed" in response["error"]
            assert elapsed < 3.0
        assert thread.server.stats()["backend"]["kills"] == 1
        assert thread.server.admission.inflight == 0

    def test_worker_site_is_in_the_catalog(self):
        assert "serve.worker" in faults.FAULT_SITES
