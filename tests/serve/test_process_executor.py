"""The ``--backend=process`` executor: true kill-on-deadline, crash
recovery, and the degradation ladder.

The acceptance spine, end to end through real sockets:

* a worker wedged in a non-cooperative hang is **SIGKILLed** at
  deadline + grace — the client gets the ordinary ``timeout`` status,
  the old PID is verifiably gone, the admission slot is reused, and
  stats count exactly one kill and one respawn;
* a worker crash mid-query (``os._exit``) is retried once on a fresh
  worker, transparently;
* when the retry also crashes, the request completes on the threaded
  fallback with ``degraded: "thread"`` in the response and a
  ``degraded`` request event;
* repeated crashes quarantine the process backend entirely — the
  server keeps serving, threaded, with the reason in ``stats``.

Fault plans are installed in the parent *before* the server starts:
worker processes fork at pool construction and inherit the armed plan;
``@N`` triggers count per worker process, so ``crash@2`` passes a
worker's first query and kills its second, while a retry landing on a
fresh worker starts back at zero and succeeds.
"""

import os
import time

import pytest

from repro.robustness import faults
from repro.serve import (
    ServeClient,
    ServeOptions,
    ThreadedExecutor,
)


def _wait_for_pid_exit(pid, timeout):
    """True when ``pid`` disappears within ``timeout`` seconds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        time.sleep(0.02)
    return False


class TestProcessBackendServes:
    def test_query_update_query_through_worker_processes(
        self, server_factory
    ):
        thread = server_factory(backend="process", workers=2, max_inflight=2)
        server_pid = os.getpid()
        worker_pids = thread.server.executor.worker_pids
        assert len(worker_pids) == 2
        assert server_pid not in worker_pids
        with ServeClient(thread.server.address) as client:
            first = client.query("anc(a, X)")
            assert first["status"] == "ok"
            assert first["count"] == 4
            assert "degraded" not in first
            # An update publishes a new generation; the next query must
            # see it (the worker's cached program is generation-keyed,
            # so a stale cache would be an isolation bug, not a perf
            # one).
            assert client.update(asserts=["parent(e, f)."])["status"] == "ok"
            second = client.query("anc(a, X)")
            assert second["status"] == "ok"
            assert second["generation"] == 1
            assert second["count"] == 5
        stats = thread.server.stats()["backend"]
        assert stats["kind"] == "process"
        assert stats["quarantined"] is False
        assert stats["kills"] == 0 and stats["crashes"] == 0

    def test_warm_worker_skips_reshipping_but_stays_correct(
        self, server_factory
    ):
        """With one worker, consecutive queries hit the same process:
        the second runs from the cached program (same generation), and
        every post-update query sees its own generation's answers."""
        thread = server_factory(backend="process", workers=1, max_inflight=1)
        with ServeClient(thread.server.address) as client:
            for expected_count, new_fact in (
                (4, "parent(e, f)."),
                (5, "parent(f, g)."),
                (6, None),
            ):
                response = client.query("anc(a, X)")
                assert response["status"] == "ok"
                assert response["count"] == expected_count
                if new_fact is not None:
                    assert client.update(asserts=[new_fact])["status"] == "ok"

    def test_cooperative_timeout_does_not_kill_the_worker(
        self, server_factory
    ):
        """A query that blows its deadline inside engine work is caught
        by the in-worker budget — answered ``timeout`` with the worker
        still alive (SIGKILL is reserved for non-cooperative wedges)."""
        thread = server_factory(
            backend="process", workers=1, max_inflight=1,
            default_timeout=0.3, grace=5.0,
        )
        pids_before = thread.server.executor.worker_pids
        with ServeClient(thread.server.address) as client:
            response = client.query("slow")
            assert response["status"] == "timeout"
            assert client.query("anc(a, X)")["status"] == "ok"
        assert thread.server.executor.worker_pids == pids_before
        stats = thread.server.stats()["backend"]
        assert stats["kills"] == 0 and stats["respawns"] == 0


class TestKillOnDeadline:
    def test_wedged_worker_is_killed_answered_and_replaced(
        self, server_factory
    ):
        """The acceptance proof: a non-cooperative 30s hang under a
        0.4s deadline is answered at ~deadline+grace, its worker PID is
        SIGKILLed and gone within 2x grace, the admission slot is
        reused by the next query, and stats count exactly one kill and
        one respawn."""
        faults.install_from_spec("serve.worker:hang:30@2")
        grace = 0.2
        thread = server_factory(
            backend="process", workers=1, max_inflight=1, max_queue=0,
            default_timeout=0.4, grace=grace, drain_timeout=0.5,
        )
        address = thread.server.address
        with ServeClient(address) as client:
            assert client.query("anc(a, X)")["status"] == "ok"  # warm-up
            (wedged_pid,) = thread.server.executor.worker_pids

            started = time.perf_counter()
            response = client.query("anc(a, X)")  # trips hang@2: wedged
            elapsed = time.perf_counter() - started

            assert response["status"] == "timeout"
            assert "worker killed" in response["error"]
            # Answered at deadline + grace (+ respawn/roundtrip slack),
            # decades before the 30s hang would have ended.
            assert 0.35 <= elapsed < 3.0, f"answered after {elapsed:.2f}s"
            # The wedged PID is truly gone — SIGKILL, not abandonment.
            assert _wait_for_pid_exit(wedged_pid, timeout=2 * grace + 2.0)
            # The slot (max_inflight=1, max_queue=0) is free again and
            # served by the respawned worker.
            reuse = client.query("anc(a, X)")
            assert reuse["status"] == "ok"
            assert reuse["count"] == 4
        stats = thread.server.stats()["backend"]
        assert stats["kills"] == 1
        assert stats["respawns"] == 1
        assert stats["crashes"] == 0
        assert stats["quarantined"] is False
        assert thread.server.admission.inflight == 0


class TestCrashRecovery:
    def test_crash_mid_query_is_retried_on_a_fresh_worker(
        self, server_factory
    ):
        """crash@2 with one worker: the first query warms the worker,
        the second kills it mid-query; the retry lands on the fresh
        respawn (per-process trigger counter back at zero) and the
        client sees a plain ``ok`` — no degraded marker."""
        faults.install_from_spec("serve.worker:crash@2")
        thread = server_factory(backend="process", workers=1, max_inflight=1)
        with ServeClient(thread.server.address) as client:
            assert client.query("anc(a, X)")["status"] == "ok"
            response = client.query("anc(a, X)")
            assert response["status"] == "ok"
            assert response["count"] == 4
            assert "degraded" not in response
        stats = thread.server.stats()["backend"]
        assert stats["crashes"] == 1
        assert stats["respawns"] == 1
        assert stats["degraded_requests"] == 0
        assert stats["quarantined"] is False

    def test_repeated_crash_degrades_to_threaded_fallback(
        self, server_factory
    ):
        """crash@1: every fresh worker dies on its first task, so the
        retry crashes too — the request completes on the embedded
        threaded executor, marked ``degraded``, with a request event."""
        faults.install_from_spec("serve.worker:crash@1")
        thread = server_factory(
            backend="process", workers=1, max_inflight=1,
            quarantine_after=10,
        )
        with ServeClient(thread.server.address) as client:
            response = client.query("anc(a, X)")
            assert response["status"] == "ok"
            assert response["count"] == 4
            assert response["degraded"] == "thread"
        stats = thread.server.stats()["backend"]
        assert stats["degraded_requests"] == 1
        assert stats["crashes"] == 2  # first attempt + the retry
        assert stats["quarantined"] is False
        degraded_events = [
            e for e in thread.server.events
            if e.kind == "request" and e.action == "degraded"
        ]
        assert len(degraded_events) == 1

    def test_crash_threshold_quarantines_the_process_backend(
        self, server_factory
    ):
        faults.install_from_spec("serve.worker:crash@1")
        thread = server_factory(
            backend="process", workers=1, max_inflight=1,
            quarantine_after=2,
        )
        with ServeClient(thread.server.address) as client:
            # Both attempts of the first query crash -> threshold of 2
            # reached -> quarantined, yet the request still succeeds.
            first = client.query("anc(a, X)")
            assert first["status"] == "ok"
            assert first["degraded"] == "thread"
            # The backend stays out of rotation: later queries go
            # straight to the fallback, no fresh crashes.
            second = client.query("anc(a, X)")
            assert second["status"] == "ok"
            assert second["degraded"] == "thread"
        stats = thread.server.stats()["backend"]
        assert stats["quarantined"] is True
        assert "consecutive worker crashes" in stats["quarantine_reason"]
        assert stats["crashes"] == 2


class TestBackendSelection:
    def test_unknown_backend_rejected(self, database):
        from repro.serve import QueryServer

        with pytest.raises(ValueError, match="unknown backend"):
            QueryServer(database, ServeOptions(backend="fibers"))

    def test_thread_capacity_warning_surfaces(self, database):
        """max_workers < max_inflight silently re-queues admitted
        requests — the server must warn at startup and in stats."""
        from repro.serve import QueryServer

        with pytest.warns(RuntimeWarning, match="re-queue"):
            server = QueryServer(
                database,
                ServeOptions(backend="thread", workers=2, max_inflight=8),
            )
        assert "2 workers" in server.backend_warning
        assert server.stats()["backend"]["capacity_warning"]
        server.executor.shutdown()

    def test_process_capacity_warning_surfaces(self, database):
        from repro.serve import QueryServer

        with pytest.warns(RuntimeWarning, match="admission slots"):
            server = QueryServer(
                database,
                ServeOptions(backend="process", workers=1, max_inflight=4),
            )
        server.executor.shutdown()

    def test_default_thread_backend_never_warns(self, database):
        from repro.serve import QueryServer

        server = QueryServer(database, ServeOptions())
        assert server.backend_warning is None
        assert isinstance(server.executor, ThreadedExecutor)
        assert server.stats()["backend"]["kind"] == "thread"
        server.executor.shutdown()

    def test_threaded_capacity_warning_boundary(self):
        executor = ThreadedExecutor(max_workers=4)
        try:
            assert executor.capacity_warning(4) is None
            assert executor.capacity_warning(5) is not None
        finally:
            executor.shutdown()
