"""Shared serve fixtures: programs, live servers, disarmed faults."""

import os

import pytest

from repro.prolog import Database
from repro.robustness import faults
from repro.serve import ServeOptions, ServerThread

#: A finite relation plus tunable-cost generators, all at shallow
#: recursion depth: ``spin/4`` yields 10^4 solutions (use ``limit`` to
#: dial per-request work), and ``slow/0`` searches 10^8 combinations —
#: effectively unbounded, so deadline/cancellation paths always win.
PROGRAM = (
    "\n".join(f"d({i})." for i in range(10))
    + """
parent(a, b). parent(b, c). parent(c, d). parent(d, e).
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
spin(A, B, C, D) :- d(A), d(B), d(C), d(D).
slow :- spin(_, _, _, _), spin(_, _, _, _), fail.
"""
)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()
    os.environ.pop("REPRO_FAULTS", None)
    os.environ.pop("REPRO_FAULTS_SEED", None)


@pytest.fixture()
def database():
    return Database.from_source(PROGRAM)


@pytest.fixture()
def server_factory(database):
    """Start ``ServerThread`` servers on ephemeral ports; always stop."""
    started = []

    def factory(db=None, **option_kwargs):
        option_kwargs.setdefault("port", 0)
        option_kwargs.setdefault("default_timeout", 10.0)
        thread = ServerThread(
            db if db is not None else database, ServeOptions(**option_kwargs)
        )
        started.append(thread)
        thread.start()
        return thread

    yield factory
    for thread in started:
        thread.stop()
