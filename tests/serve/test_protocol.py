"""Wire-format, status/exit-code taxonomy, and client-retry tests."""

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_RESOURCE, EXIT_UNAVAILABLE
from repro.serve import (
    RETRYABLE_STATUSES,
    ServerUnavailable,
    request_with_retries,
    retry_delays,
)
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_EXHAUSTED,
    STATUS_EXIT,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    STATUS_UNAVAILABLE,
    decode_line,
    encode,
    error_response,
    status_exit_code,
)


class TestEncodeDecode:
    def test_round_trip(self):
        message = {"op": "query", "id": "q1", "query": "anc(a, X)", "limit": 3}
        assert decode_line(encode(message)) == message

    def test_encode_is_one_line(self):
        line = encode({"op": "ping", "note": "multi\nline\ntext"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_garbage_bytes_raise(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_unknown_op_raises(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_line(b'{"op": "explode"}\n')

    def test_missing_op_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"query": "f(X)"}\n')

    def test_error_response_shape(self):
        response = error_response("id-9", STATUS_REJECTED, "full", generation=3)
        assert response == {
            "id": "id-9", "status": STATUS_REJECTED, "error": "full",
            "generation": 3,
        }
        json.dumps(response)  # must stay JSON-serializable


class TestExitCodeTaxonomy:
    """STATUS_EXIT duplicates the CLI constants as literals (so the
    protocol layer never imports the CLI); pin the two tables against
    each other so they cannot drift apart."""

    def test_every_status_has_an_exit_code(self):
        statuses = {
            STATUS_OK, STATUS_ERROR, STATUS_TIMEOUT, STATUS_EXHAUSTED,
            STATUS_CANCELLED, STATUS_REJECTED, STATUS_UNAVAILABLE,
        }
        assert set(STATUS_EXIT) == statuses

    def test_pinned_against_cli_constants(self):
        assert STATUS_EXIT[STATUS_OK] == 0
        assert STATUS_EXIT[STATUS_ERROR] == EXIT_ERROR
        assert STATUS_EXIT[STATUS_TIMEOUT] == EXIT_RESOURCE
        assert STATUS_EXIT[STATUS_EXHAUSTED] == EXIT_RESOURCE
        assert STATUS_EXIT[STATUS_CANCELLED] == EXIT_RESOURCE
        assert STATUS_EXIT[STATUS_REJECTED] == EXIT_UNAVAILABLE
        assert STATUS_EXIT[STATUS_UNAVAILABLE] == EXIT_UNAVAILABLE

    def test_exit_constants_are_distinct(self):
        assert len({0, 1, EXIT_ERROR, EXIT_RESOURCE, EXIT_UNAVAILABLE}) == 5

    def test_unknown_status_maps_to_error(self):
        assert status_exit_code("who-knows") == EXIT_ERROR

    def test_ops_catalog(self):
        assert OPS == ("query", "update", "ping", "stats")
        assert PROTOCOL_VERSION == 1


class _ScriptedClient:
    """Fake ServeClient: each construction pops the next scripted
    attempt — a response dict to return or an exception to raise."""

    def __init__(self, script, attempts):
        self._script = script
        self._attempts = attempts

    @classmethod
    def factory(cls, script):
        attempts = []
        return (
            lambda address: cls(script, attempts)
        ), attempts

    def request(self, message):
        self._attempts.append(dict(message))
        step = self._script.pop(0)
        if isinstance(step, Exception):
            raise step
        return dict(step)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False


class TestClientRetries:
    """The ``repro client --retry N --retry-backoff SECS`` contract."""

    def test_backoff_schedule_is_pinned(self):
        # --retry 3 --retry-backoff 0.5 waits 0.5s, 1s, 2s.
        assert retry_delays(3, 0.5) == [0.5, 1.0, 2.0]
        assert retry_delays(1, 0.25) == [0.25]
        assert retry_delays(0, 0.5) == []
        assert retry_delays(-2, 0.5) == []

    def test_retryable_statuses_are_the_exit_4_family(self):
        assert set(RETRYABLE_STATUSES) == {
            STATUS_REJECTED, STATUS_UNAVAILABLE,
        }

    def test_rejected_then_ok_retries_with_backoff(self):
        factory, attempts = _ScriptedClient.factory([
            {"status": STATUS_REJECTED, "error": "queue full"},
            {"status": STATUS_REJECTED, "error": "queue full"},
            {"status": STATUS_OK, "count": 1},
        ])
        sleeps = []
        response = request_with_retries(
            "fake:1", {"op": "query", "query": "f(X)"},
            retries=3, backoff=0.5, sleep=sleeps.append,
            client_factory=factory,
        )
        assert response["status"] == STATUS_OK
        assert len(attempts) == 3
        assert sleeps == [0.5, 1.0]  # stopped before the 2.0 wait

    def test_unreachable_server_retries_then_reraises(self):
        factory, attempts = _ScriptedClient.factory([
            ServerUnavailable("refused"),
            ServerUnavailable("refused"),
            ServerUnavailable("still refused"),
        ])
        sleeps = []
        with pytest.raises(ServerUnavailable, match="still refused"):
            request_with_retries(
                "fake:1", {"op": "ping"},
                retries=2, backoff=0.1, sleep=sleeps.append,
                client_factory=factory,
            )
        assert len(attempts) == 3
        assert sleeps == [0.1, 0.2]

    def test_non_retryable_status_returns_immediately(self):
        for status in (STATUS_ERROR, STATUS_TIMEOUT, STATUS_EXHAUSTED):
            factory, attempts = _ScriptedClient.factory([
                {"status": status},
                {"status": STATUS_OK},
            ])
            sleeps = []
            response = request_with_retries(
                "fake:1", {"op": "query", "query": "f(X)"},
                retries=5, backoff=0.1, sleep=sleeps.append,
                client_factory=factory,
            )
            # A verdict on the request itself: no second attempt.
            assert response["status"] == status
            assert len(attempts) == 1 and sleeps == []

    def test_exhausted_retries_return_the_last_shed_response(self):
        factory, attempts = _ScriptedClient.factory([
            {"status": STATUS_REJECTED, "error": "full"},
            {"status": STATUS_REJECTED, "error": "still full"},
        ])
        response = request_with_retries(
            "fake:1", {"op": "ping"},
            retries=1, backoff=0.1, sleep=lambda _s: None,
            client_factory=factory,
        )
        # The caller maps this to exit 4, same as without retries.
        assert response["error"] == "still full"

    def test_zero_retries_is_a_single_attempt(self):
        factory, attempts = _ScriptedClient.factory([
            {"status": STATUS_REJECTED, "error": "full"},
        ])
        response = request_with_retries(
            "fake:1", {"op": "ping"}, client_factory=factory,
            sleep=lambda _s: None,
        )
        assert response["status"] == STATUS_REJECTED
        assert len(attempts) == 1

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["client", "localhost:7878", "ping",
             "--retry", "3", "--retry-backoff", "0.5"]
        )
        assert args.retry == 3 and args.retry_backoff == 0.5
        defaults = build_parser().parse_args(
            ["client", "localhost:7878", "ping"]
        )
        assert defaults.retry == 0 and defaults.retry_backoff == 0.25
