"""Wire-format and status/exit-code taxonomy tests."""

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_RESOURCE, EXIT_UNAVAILABLE
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_EXHAUSTED,
    STATUS_EXIT,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    STATUS_UNAVAILABLE,
    decode_line,
    encode,
    error_response,
    status_exit_code,
)


class TestEncodeDecode:
    def test_round_trip(self):
        message = {"op": "query", "id": "q1", "query": "anc(a, X)", "limit": 3}
        assert decode_line(encode(message)) == message

    def test_encode_is_one_line(self):
        line = encode({"op": "ping", "note": "multi\nline\ntext"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_garbage_bytes_raise(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_unknown_op_raises(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_line(b'{"op": "explode"}\n')

    def test_missing_op_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b'{"query": "f(X)"}\n')

    def test_error_response_shape(self):
        response = error_response("id-9", STATUS_REJECTED, "full", generation=3)
        assert response == {
            "id": "id-9", "status": STATUS_REJECTED, "error": "full",
            "generation": 3,
        }
        json.dumps(response)  # must stay JSON-serializable


class TestExitCodeTaxonomy:
    """STATUS_EXIT duplicates the CLI constants as literals (so the
    protocol layer never imports the CLI); pin the two tables against
    each other so they cannot drift apart."""

    def test_every_status_has_an_exit_code(self):
        statuses = {
            STATUS_OK, STATUS_ERROR, STATUS_TIMEOUT, STATUS_EXHAUSTED,
            STATUS_CANCELLED, STATUS_REJECTED, STATUS_UNAVAILABLE,
        }
        assert set(STATUS_EXIT) == statuses

    def test_pinned_against_cli_constants(self):
        assert STATUS_EXIT[STATUS_OK] == 0
        assert STATUS_EXIT[STATUS_ERROR] == EXIT_ERROR
        assert STATUS_EXIT[STATUS_TIMEOUT] == EXIT_RESOURCE
        assert STATUS_EXIT[STATUS_EXHAUSTED] == EXIT_RESOURCE
        assert STATUS_EXIT[STATUS_CANCELLED] == EXIT_RESOURCE
        assert STATUS_EXIT[STATUS_REJECTED] == EXIT_UNAVAILABLE
        assert STATUS_EXIT[STATUS_UNAVAILABLE] == EXIT_UNAVAILABLE

    def test_exit_constants_are_distinct(self):
        assert len({0, 1, EXIT_ERROR, EXIT_RESOURCE, EXIT_UNAVAILABLE}) == 5

    def test_unknown_status_maps_to_error(self):
        assert status_exit_code("who-knows") == EXIT_ERROR

    def test_ops_catalog(self):
        assert OPS == ("query", "update", "ping", "stats")
        assert PROTOCOL_VERSION == 1
