"""Bottom-up evaluation under the query server.

``ServeOptions(eval_strategy=...)`` routes every request engine through
the bottom-up dispatcher. Because each published snapshot is a fresh
:class:`~repro.prolog.database.Database`, the dispatcher's
generation-guarded state invalidates naturally on ``update`` — the
round-trip tests pin exactly that: answers materialized before an
update must not leak into queries after it, and vice versa.
"""

from repro.serve import ServeClient


class TestBottomUpServe:
    def test_recursive_query_bottomup(self, server_factory):
        thread = server_factory(eval_strategy="bottomup")
        with ServeClient(thread.server.address) as client:
            response = client.query("anc(a, X)")
            assert response["count"] == 4
            values = {binding["X"] for binding in response["solutions"]}
            assert values == {"b", "c", "d", "e"}

    def test_update_invalidates_materialization(self, server_factory):
        thread = server_factory(eval_strategy="bottomup")
        with ServeClient(thread.server.address) as client:
            assert client.query("anc(a, X)")["count"] == 4
            update = client.update(asserts=["parent(e, f)."])
            assert update["status"] == "ok"
            after = client.query("anc(a, X)")
            assert after["generation"] == update["generation"]
            assert after["count"] == 5

    def test_retract_shrinks_materialization(self, server_factory):
        thread = server_factory(eval_strategy="bottomup")
        with ServeClient(thread.server.address) as client:
            assert client.query("anc(a, X)")["count"] == 4
            assert client.update(retracts=["parent(a, b)."])["retracted"] == 1
            assert client.query("anc(a, X)")["count"] == 0

    def test_matches_topdown_answers(self, server_factory):
        bottomup = server_factory(eval_strategy="bottomup")
        topdown = server_factory()
        with ServeClient(bottomup.server.address) as bu_client:
            with ServeClient(topdown.server.address) as td_client:
                for query in ("anc(a, X)", "anc(X, e)", "anc(X, Y)"):
                    bu = bu_client.query(query)["solutions"]
                    td = td_client.query(query)["solutions"]
                    key = lambda b: tuple(sorted(b.items()))
                    assert {key(b) for b in bu} == {key(b) for b in td}
