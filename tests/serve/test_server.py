"""End-to-end server tests over real sockets.

Each test starts a :class:`~repro.serve.server.ServerThread` on an
ephemeral port (or a UNIX socket) and drives it with the blocking
client — the same stack ``repro client`` and the benchmark use.
"""

import json
import socket
import threading
import time

import pytest

from repro.cli import EXIT_UNAVAILABLE, main
from repro.serve import ServeClient, ServerUnavailable, parse_address
from repro.serve.protocol import encode


def raw_connection(address):
    host, _, port = address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=10.0)
    return sock, sock.makefile("rb")


class TestQueryPath:
    def test_solutions_and_generation(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            response = client.query("anc(a, X)")
        assert response["status"] == "ok"
        assert response["generation"] == 0
        assert response["count"] == 4
        assert {"X": "b"} in response["solutions"]
        assert response["calls"] > 0

    def test_solution_cap_is_a_clean_stop(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            response = client.query("spin(A, B, C, D)", limit=7)
        assert response["status"] == "ok"
        assert response["count"] == 7

    def test_parse_error_is_an_error_response(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            response = client.query("anc(a,")
        assert response["status"] == "error"
        assert response["error"]

    def test_deadline_expiry_is_a_timeout_response(self, server_factory):
        thread = server_factory(drain_timeout=0.5)
        with ServeClient(thread.server.address) as client:
            started = time.perf_counter()
            response = client.query("slow", timeout=0.3)
            elapsed = time.perf_counter() - started
        assert response["status"] == "timeout"
        assert elapsed < 5.0

    def test_bad_field_types_are_rejected(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            assert client.query("anc(a, X)", timeout=-1)["status"] == "error"
            assert client.request({"op": "query", "query": 7})["status"] == "error"

    def test_garbage_line_gets_an_error_response(self, server_factory):
        sock, reader = raw_connection(server_factory().server.address)
        try:
            sock.sendall(b"this is not json\n")
            response = json.loads(reader.readline())
        finally:
            sock.close()
        assert response["status"] == "error"
        assert response["id"] is None

    def test_responses_correlate_by_id_out_of_order(self, server_factory):
        address = server_factory(max_inflight=2).server.address
        sock, reader = raw_connection(address)
        try:
            sock.sendall(encode({
                "op": "query", "id": "slow-one",
                "query": "spin(A, B, C, D)", "limit": 10_000,
            }))
            sock.sendall(encode({
                "op": "query", "id": "fast-one", "query": "anc(a, X)",
            }))
            first = json.loads(reader.readline())
            second = json.loads(reader.readline())
        finally:
            sock.close()
        # The cheap query overtakes the expensive one on the wire.
        assert first["id"] == "fast-one"
        assert second["id"] == "slow-one"
        assert second["count"] == 10_000


class TestUpdatePath:
    def test_update_bumps_generation_and_queries_see_it(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            assert client.query("anc(a, X)")["count"] == 4
            update = client.update(asserts=["parent(e, f)."])
            assert update["status"] == "ok"
            assert update["generation"] == 1
            assert update["asserted"] == 1
            after = client.query("anc(a, X)")
            assert after["generation"] == 1
            assert after["count"] == 5

    def test_retract_via_update(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            update = client.update(retracts=["parent(a, b)."])
            assert update["retracted"] == 1
            assert client.query("anc(a, X)")["count"] == 0

    def test_bad_update_source_leaves_generation_standing(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            response = client.update(asserts=["broken(("])
            assert response["status"] == "error"
            assert client.ping()["generation"] == 0

    def test_empty_update_is_an_error(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            assert client.update()["status"] == "error"


class TestAdmissionE2E:
    def test_saturated_server_sheds_load(self, server_factory):
        thread = server_factory(max_inflight=1, max_queue=0, drain_timeout=0.5)
        address = thread.server.address
        sock, reader = raw_connection(address)
        try:
            sock.sendall(encode({
                "op": "query", "id": "hog", "query": "slow", "timeout": 2.0,
            }))
            time.sleep(0.3)  # let the hog occupy the only slot
            with ServeClient(address) as client:
                shed = client.query("anc(a, X)")
            assert shed["status"] == "rejected"
            assert "saturated" in shed["error"]
            hog = json.loads(reader.readline())
            assert hog["id"] == "hog"
            assert hog["status"] == "timeout"
        finally:
            sock.close()
        stats = thread.server.stats()
        assert stats["rejected"] == 1

    def test_sustains_concurrent_queries_with_background_updates(
        self, server_factory
    ):
        """The ISSUE's headline demo: >= 8 concurrent in-flight queries
        while updates publish new generations underneath them."""
        thread = server_factory(max_inflight=10, max_queue=10)
        address = thread.server.address
        responses = []
        lock = threading.Lock()
        barrier = threading.Barrier(10)

        def reader_worker():
            with ServeClient(address) as client:
                barrier.wait(timeout=10.0)  # all 10 fire together
                response = client.query("spin(A, B, C, D)", limit=10_000)
            with lock:
                responses.append(response)

        workers = [
            threading.Thread(target=reader_worker) for _ in range(10)
        ]
        for worker in workers:
            worker.start()
        # Publish updates while the readers are in flight.
        with ServeClient(address) as writer:
            for n in range(3):
                assert writer.update(
                    asserts=[f"hotfix{n}(x)."]
                )["status"] == "ok"
        for worker in workers:
            worker.join(timeout=60.0)
        assert len(responses) == 10
        for response in responses:
            assert response["status"] == "ok"
            assert response["count"] == 10_000
        stats = thread.server.stats()
        assert stats["peak_inflight"] >= 8
        assert stats["generation"] == 3


class TestLifecycleEvents:
    def test_request_events_cover_the_lifecycle(self, server_factory):
        thread = server_factory(max_inflight=1, max_queue=0, drain_timeout=0.5)
        address = thread.server.address
        sock, reader = raw_connection(address)
        try:
            sock.sendall(encode({
                "op": "query", "id": "hog", "query": "slow", "timeout": 1.0,
            }))
            time.sleep(0.3)
            with ServeClient(address) as client:
                client.query("anc(a, X)")  # shed
            reader.readline()  # hog's timeout response
        finally:
            sock.close()
        thread.stop()
        events = [e for e in thread.server.events if e.kind == "request"]
        actions = [e.action for e in events]
        assert "admitted" in actions
        assert "started" in actions
        assert "rejected" in actions
        assert "completed" in actions
        completed = [e for e in events if e.action == "completed"]
        assert all(e.seconds is not None for e in completed)
        rejected = [e for e in events if e.action == "rejected"]
        assert rejected[0].status == "rejected"
        assert all(e.generation == 0 for e in events)
        # Every event serializes to one flat JSONL-ready record.
        for event in events:
            record = event.to_record()
            assert record["kind"] == "request"
            json.dumps(record)

    def test_jsonl_log_receives_lifecycle_records(self, server_factory, tmp_path):
        log_path = tmp_path / "requests.jsonl"
        thread = server_factory(log_path=str(log_path))
        with ServeClient(thread.server.address) as client:
            client.query("anc(a, X)")
            client.update(asserts=["extra(x)."])
        thread.stop()
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines() if line
        ]
        assert all(r["kind"] == "request" for r in records)
        ops = {r["op"] for r in records}
        assert ops == {"query", "update"}
        assert any(
            r["action"] == "completed" and r["generation"] == 1
            for r in records
        )


class TestDrainAndAvailability:
    def test_draining_server_answers_unavailable(self, database):
        import asyncio

        from repro.serve import QueryServer

        server = QueryServer(database)
        server.draining = True

        async def scenario():
            query = await server._run_query(
                {"op": "query", "id": 1, "query": "anc(a, X)"}
            )
            update = await server._run_update(
                {"op": "update", "id": 2, "assert": ["f(x)."]}
            )
            return query, update

        query, update = asyncio.run(scenario())
        assert query["status"] == "unavailable"
        assert update["status"] == "unavailable"

    def test_graceful_drain_finishes_inflight_work(self, server_factory):
        thread = server_factory()
        address = thread.server.address
        result = {}

        def worker():
            with ServeClient(address) as client:
                result["response"] = client.query(
                    "spin(A, B, C, D)", limit=10_000
                )

        runner = threading.Thread(target=worker)
        runner.start()
        time.sleep(0.1)  # request in flight
        thread.stop()
        runner.join(timeout=30.0)
        assert result["response"]["status"] == "ok"
        assert result["response"]["count"] == 10_000

    def test_stats_and_ping(self, server_factory):
        with ServeClient(server_factory().server.address) as client:
            ping = client.ping()
            assert ping["status"] == "ok"
            assert ping["protocol"] == 1
            client.query("anc(a, X)")
            stats = client.stats()
        assert stats["status"] == "ok"
        assert stats["completed"] == 1
        assert stats["engine_calls"] > 0
        assert stats["draining"] is False

    def test_unix_socket_transport(self, server_factory, tmp_path):
        path = str(tmp_path / "repro.sock")
        thread = server_factory(unix_path=path)
        assert thread.server.address == path
        with ServeClient(path) as client:
            assert client.query("anc(a, X)")["count"] == 4
        with ServeClient(f"unix:{path}") as client:
            assert client.ping()["status"] == "ok"


class TestClientAddressing:
    def test_parse_address_forms(self, tmp_path):
        assert parse_address("127.0.0.1:7878") == (
            socket.AF_INET, ("127.0.0.1", 7878)
        )
        assert parse_address(":7878")[1] == ("127.0.0.1", 7878)
        assert parse_address("unix:/tmp/x")[1] == "/tmp/x"
        assert parse_address("/tmp/x")[1] == "/tmp/x"
        with pytest.raises(ServerUnavailable):
            parse_address("nonsense")

    def test_unreachable_server_raises_server_unavailable(self):
        with pytest.raises(ServerUnavailable):
            ServeClient("127.0.0.1:1", connect_timeout=0.5)


class TestCliClient:
    def test_query_round_trip_exit_zero(self, server_factory, capsys):
        address = server_factory().server.address
        code = main(["client", address, "query", "anc(a, X)"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["count"] == 4

    def test_update_then_query_sees_new_generation(self, server_factory, capsys):
        address = server_factory().server.address
        assert main([
            "client", address, "update", "--assert", "parent(e, f).",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["generation"] == 1
        assert main(["client", address, "query", "anc(a, X)"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 5

    def test_timeout_maps_to_exit_resource(self, server_factory, capsys):
        thread = server_factory(drain_timeout=0.5)
        code = main([
            "client", thread.server.address, "query", "slow",
            "--timeout", "0.3",
        ])
        assert code == 3
        capsys.readouterr()

    def test_unreachable_server_exits_unavailable(self, capsys):
        code = main(["client", "127.0.0.1:1", "ping"])
        assert code == EXIT_UNAVAILABLE
        assert "error:" in capsys.readouterr().err
