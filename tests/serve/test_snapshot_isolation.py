"""Snapshot-isolation property: a reader admitted at generation G sees
exactly what a serial run against G's program would see, no matter how
many writers publish past it mid-query.

Two layers:

* a deterministic store-level test that interleaves a reader's
  solution pulls with concurrent generation publishes (threads, no
  sockets), and
* a hypothesis property over random update schedules driven through
  the real server, checking every response against a serial oracle for
  the generation the response reports — run on **both** backends, so
  the process executor's per-worker generation cache faces the same
  oracle: a worker answering generation G from a stale cached program
  would fail it immediately.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.prolog import Database, Engine, term_to_string
from repro.serve import ServeClient, SnapshotStore


def base_source(facts):
    return (
        "".join(f"item({n}).\n" for n in sorted(facts))
        + "pair(X, Y) :- item(X), item(Y).\n"
    )


class TestStoreLevelIsolation:
    def test_reader_pinned_mid_enumeration(self):
        """Pull one solution, let writers advance three generations,
        pull the rest: the answer set is the pinned generation's."""
        store = SnapshotStore(Database.from_source(base_source({1, 2, 3})))
        pinned = store.current
        engine = Engine(pinned.database)
        solutions = engine.solve("pair(X, Y)")
        first = next(solutions)
        assert first is not None

        published = threading.Event()

        def writer():
            for n in (10, 11, 12):
                store.publish(
                    store.build(store.current, asserts=[f"item({n})."])
                )
            published.set()

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=10.0)
        assert published.is_set()
        assert store.generation == 3
        rest = list(solutions)
        # 3 items -> 9 pairs total, regardless of the 3 items added
        # to later generations while we were enumerating.
        assert 1 + len(rest) == 9

    def test_concurrent_readers_on_distinct_generations(self):
        store = SnapshotStore(Database.from_source(base_source({1})))
        generations = [store.current]
        for n in (2, 3):
            generations.append(
                store.publish(
                    store.build(store.current, asserts=[f"item({n})."])
                )
            )
        results = {}
        lock = threading.Lock()

        def reader(snapshot):
            count = Engine(snapshot.database).count_solutions("pair(X, Y)")
            with lock:
                results[snapshot.generation] = count

        threads = [
            threading.Thread(target=reader, args=(snapshot,))
            for snapshot in generations
            for _ in range(2)  # each generation read twice, concurrently
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert results == {0: 1, 1: 4, 2: 9}


class TestServerLevelIsolation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @settings(max_examples=8, deadline=None)
    @given(
        updates=st.lists(
            st.integers(min_value=10, max_value=99),
            min_size=1, max_size=4, unique=True,
        ),
        readers=st.integers(min_value=2, max_value=6),
    )
    def test_every_response_matches_a_serial_run_of_its_generation(
        self, backend, updates, readers
    ):
        from repro.serve import ServeOptions, ServerThread

        initial = {1, 2, 3}
        database = Database.from_source(base_source(initial))
        # The oracle: item-set per generation, as the writer will
        # publish them (updates apply in submission order on one
        # connection, so generation g holds the first g updates).
        items_at = {0: set(initial)}
        for generation, item in enumerate(updates, start=1):
            items_at[generation] = items_at[generation - 1] | {item}

        thread = ServerThread(
            database,
            ServeOptions(port=0, max_inflight=readers + 1, max_queue=32,
                         default_timeout=30.0, backend=backend),
        )
        address = thread.start()
        responses = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader_worker():
            with ServeClient(address) as client:
                while not stop.is_set():
                    response = client.query("pair(X, Y)")
                    with lock:
                        responses.append(response)

        try:
            workers = [
                threading.Thread(target=reader_worker)
                for _ in range(readers)
            ]
            for worker in workers:
                worker.start()
            with ServeClient(address) as writer:
                for item in updates:
                    result = writer.update(asserts=[f"item({item})."])
                    assert result["status"] == "ok"
            stop.set()
            for worker in workers:
                worker.join(timeout=60.0)
        finally:
            stop.set()
            thread.stop()

        assert responses, "readers never completed a query"
        for response in responses:
            assert response["status"] == "ok"
            generation = response["generation"]
            expected_items = items_at[generation]
            # A serial engine over generation g's exact program,
            # rendered the same way the server renders bindings.
            oracle = Engine(
                Database.from_source(base_source(expected_items))
            )
            expected = sorted(
                (
                    term_to_string(solution.bindings["X"]),
                    term_to_string(solution.bindings["Y"]),
                )
                for solution in oracle.ask("pair(X, Y)")
            )
            got = sorted(
                (s["X"], s["Y"]) for s in response["solutions"]
            )
            assert got == expected
            assert response["count"] == len(expected_items) ** 2
