"""Shared fixtures: every test leaves the fault machinery disarmed.

Fault plans are process-global (``faults.ACTIVE``) and the CLI exports
them to the environment so worker processes inherit them; both must be
cleared between tests or one test's faults fire in the next.
"""

import os

import pytest

from repro.robustness import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()
    os.environ.pop("REPRO_FAULTS", None)
    os.environ.pop("REPRO_FAULTS_SEED", None)


FAMILY = """
:- entry(grandmother/2).
wife(john, jane). wife(tom, pat).
mother(john, joan). mother(joan, pat). mother(ann, joan).
girl(jan).
female(W) :- girl(W).
female(W) :- wife(_, W).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""


@pytest.fixture()
def family_file(tmp_path):
    path = tmp_path / "family.pl"
    path.write_text(FAMILY)
    return str(path)
