"""The deterministic fault-injection harness and the site matrix.

The 9-cell acceptance matrix — {raise, hang, exhaust} × {engine.call,
phase.build, calibration.worker} — is driven end to end through the
CLI: every cell must finish with a clean one-line error (or a degraded
but complete result), never an unhandled traceback. Calling
``main()`` in-process makes that literal: an escaped exception fails
the test.
"""

import os

import pytest

from repro.cli import EXIT_ERROR, EXIT_RESOURCE, main
from repro.errors import BudgetExceededError, FaultInjected
from repro.robustness import faults
from repro.robustness.faults import FaultPlan


class TestSpecParsing:
    def test_basic_spec(self):
        plan = FaultPlan.from_spec("engine.call:raise@5")
        rule = plan.rules["engine.call"]
        assert rule.kind == "raise" and rule.at == 5

    def test_seconds_field(self):
        plan = FaultPlan.from_spec("phase.build:hang:0.2@1")
        assert plan.rules["phase.build"].seconds == 0.2

    def test_multiple_sites(self):
        plan = FaultPlan.from_spec("engine.call:raise@1, phase.build:exhaust@2")
        assert set(plan.rules) == {"engine.call", "phase.build"}

    def test_seed_derives_trigger_position(self):
        for seed in range(10):
            plan = FaultPlan.from_spec("engine.call:raise", seed=seed)
            assert plan.rules["engine.call"].at == 1 + seed % 7

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("nonsense")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="raise|hang|exhaust|crash"):
            FaultPlan.from_spec("engine.call:explode@1")

    def test_crash_kind_parses(self):
        plan = FaultPlan.from_spec("serve.worker:crash@2")
        rule = plan.rules["serve.worker"]
        assert rule.kind == "crash" and rule.at == 2

    def test_kind_catalog(self):
        assert faults.FAULT_KINDS == ("raise", "hang", "exhaust", "crash")

    def test_worker_sites_in_catalog(self):
        assert "serve.worker" in faults.FAULT_SITES
        assert "serve.request" in faults.FAULT_SITES


class TestFiring:
    def test_counter_site_trips_on_nth_hit(self):
        plan = FaultPlan.from_spec("engine.call:raise@3")
        plan.hit("engine.call")
        plan.hit("engine.call")
        with pytest.raises(FaultInjected):
            plan.hit("engine.call")
        assert plan.trips == [("engine.call", "raise")]

    def test_rule_fires_at_most_once(self):
        plan = FaultPlan.from_spec("engine.call:raise@1")
        with pytest.raises(FaultInjected):
            plan.hit("engine.call")
        plan.hit("engine.call")  # spent: now a no-op
        assert len(plan.trips) == 1

    def test_keyed_site_matches_task_index(self):
        plan = FaultPlan.from_spec("calibration.worker:raise@3")
        plan.hit("calibration.worker", key=0)
        plan.hit("calibration.worker", key=5)
        with pytest.raises(FaultInjected):
            plan.hit("calibration.worker", key=2)  # key + 1 == at

    def test_exhaust_raises_budget_error(self):
        plan = FaultPlan.from_spec("engine.call:exhaust@1")
        with pytest.raises(BudgetExceededError, match="injected"):
            plan.hit("engine.call")

    def test_unarmed_site_is_noop(self):
        plan = FaultPlan.from_spec("engine.call:raise@1")
        for _ in range(5):
            plan.hit("phase.build")
        assert plan.trips == []

    def test_install_and_clear(self):
        plan = faults.install_from_spec("engine.call:raise@1")
        assert faults.ACTIVE is plan
        faults.clear()
        assert faults.ACTIVE is None

    def test_crash_kind_exits_the_process_without_unwinding(self, tmp_path):
        """``crash`` is ``os._exit(13)`` — no exception, no cleanup.

        Proven in a subprocess: a sentinel file written by an
        ``atexit``/``finally`` handler must NOT appear, and the exit
        code is the raw 13, not an interpreter traceback's 1.
        """
        import subprocess
        import sys

        sentinel = tmp_path / "unwound"
        script = (
            "import sys\n"
            "from repro.robustness.faults import FaultPlan\n"
            "plan = FaultPlan.from_spec('serve.worker:crash@1')\n"
            "try:\n"
            "    plan.hit('serve.worker')\n"
            "finally:\n"
            f"    open({str(sentinel)!r}, 'w').write('unwound')\n"
            "sys.exit(0)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))),
            capture_output=True,
            timeout=60,
        )
        assert result.returncode == 13, result.stderr.decode()
        assert not sentinel.exists(), "crash kind unwound the stack"

    def test_same_spec_and_seed_reproduce_trips(self):
        def run_once():
            plan = FaultPlan.from_spec("engine.call:raise", seed=4)
            trips = []
            for _ in range(10):
                try:
                    plan.hit("engine.call")
                    trips.append(False)
                except FaultInjected:
                    trips.append(True)
            return trips

        assert run_once() == run_once()


# -- the 9-cell acceptance matrix, end to end through the CLI ------------

#: (site, kind) → the CLI invocation and its accepted exit codes.
def _matrix_invocation(site, kind, family_file):
    if site == "engine.call":
        spec = f"engine.call:{kind}:0.05@3"
        argv = ["run", family_file, "grandmother(X, Y)", "--faults", spec]
        expected = {
            "raise": {EXIT_ERROR},     # FaultInjected → one-line error
            "exhaust": {EXIT_RESOURCE},  # as if a budget ran out
            "hang": {0},               # a short stall; the run completes
        }[kind]
    elif site == "phase.build":
        spec = f"phase.build:{kind}:0.05@1"
        argv = ["reorder", family_file, "--faults", spec]
        # Per-predicate isolation: every kind degrades (or stalls) one
        # predicate and the reorder still completes.
        expected = {0}
    else:  # calibration.worker
        spec = f"calibration.worker:{kind}:2@1"
        argv = [
            "profile", family_file, "grandmother(X, Y)",
            "--jobs", "2", "--task-timeout", "0.5", "--faults", spec,
        ]
        # Failures/quarantines surface as warnings; profiling completes.
        expected = {0}
    return argv, expected


@pytest.mark.parametrize("kind", ["raise", "hang", "exhaust"])
@pytest.mark.parametrize(
    "site", ["engine.call", "phase.build", "calibration.worker"]
)
def test_fault_matrix_no_unhandled_traceback(site, kind, family_file, capsys):
    argv, expected = _matrix_invocation(site, kind, family_file)
    exit_code = main(argv)
    captured = capsys.readouterr()
    assert exit_code in expected, (
        f"{site}:{kind} exited {exit_code}, wanted {expected}\n"
        f"stderr: {captured.err}"
    )
    assert "Traceback" not in captured.err
    if exit_code != 0:
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert len(error_lines) == 1


@pytest.mark.parametrize("kind", ["raise", "hang", "exhaust"])
def test_fault_matrix_vm_engine_call(kind, family_file, capsys):
    """The engine.call row of the matrix, re-run on the bytecode VM.

    The trampoline charges ``engine.call`` through the same
    ``Engine._charge_call`` hook as the generator path, so an armed
    fault must surface identically: one ``error:`` line, the mapped
    exit code, never a traceback.
    """
    argv, expected = _matrix_invocation("engine.call", kind, family_file)
    argv = argv[:3] + ["--vm"] + argv[3:]
    exit_code = main(argv)
    captured = capsys.readouterr()
    assert exit_code in expected, (
        f"vm engine.call:{kind} exited {exit_code}, wanted {expected}\n"
        f"stderr: {captured.err}"
    )
    assert "Traceback" not in captured.err
    if exit_code != 0:
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert len(error_lines) == 1


def test_cli_exports_fault_plan_to_environment(family_file, capsys):
    main(["run", family_file, "girl(X)", "--faults", "phase.build:raise@1",
          "--fault-seed", "3"])
    assert os.environ["REPRO_FAULTS"] == "phase.build:raise@1"
    assert os.environ["REPRO_FAULTS_SEED"] == "3"


def test_degraded_predicate_surfaces_in_reorder_report(family_file, capsys):
    exit_code = main(["reorder", family_file, "--report",
                      "--faults", "phase.build:raise@2"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "degraded" in captured.err
    assert "to source order" in captured.err
