"""The supervised worker pool: per-task deadlines, retry, quarantine.

Task functions live at module level so worker processes can unpickle
them under the spawn/fork start methods alike.
"""

import time

import pytest

from repro.robustness import (
    TaskOutcome,
    WatchdogOptions,
    WatchdogUnavailable,
    run_watchdogged,
)

FAST = WatchdogOptions(task_timeout=0.25, retries=1, backoff=0.01)


def _square(index, payload):
    return payload * payload


def _boom(index, payload):
    raise ValueError(f"boom {payload}")


def _sleepy(index, payload):
    if payload == "hang":
        time.sleep(30)
    return payload


def _bad_init():
    raise RuntimeError("initializer exploded")


class TestHappyPath:
    def test_results_in_payload_order(self):
        outcomes = run_watchdogged(_square, [1, 2, 3, 4, 5], jobs=3)
        assert all(o.ok for o in outcomes)
        assert [o.result for o in outcomes] == [1, 4, 9, 16, 25]
        assert all(o.attempts == 1 for o in outcomes)

    def test_any_jobs_value_is_deterministic(self):
        serial = run_watchdogged(_square, list(range(8)), jobs=1)
        wide = run_watchdogged(_square, list(range(8)), jobs=4)
        assert [o.result for o in serial] == [o.result for o in wide]

    def test_single_payload(self):
        (outcome,) = run_watchdogged(_square, [6], jobs=4)
        assert outcome.result == 36 and outcome.index == 0


class TestFailures:
    def test_crashing_task_retried_then_quarantined(self):
        (outcome,) = run_watchdogged(_boom, ["x"], jobs=1, options=FAST)
        assert outcome.quarantined and not outcome.ok
        assert outcome.attempts == 2  # first try + one retry
        assert "boom x" in outcome.error
        assert not outcome.timed_out

    def test_hung_worker_killed_within_twice_the_timeout(self):
        options = WatchdogOptions(task_timeout=0.3, retries=0, backoff=0.01)
        start = time.monotonic()
        (outcome,) = run_watchdogged(_sleepy, ["hang"], jobs=1, options=options)
        elapsed = time.monotonic() - start
        assert outcome.quarantined and outcome.timed_out
        assert "0.3s timeout" in outcome.error
        # The acceptance bound: kill within 2x the task timeout (plus
        # process spawn/teardown overhead).
        assert elapsed < 2 * 0.3 + 1.0, f"kill took {elapsed:.2f}s"

    def test_hang_does_not_poison_neighbours(self):
        outcomes = run_watchdogged(
            _sleepy, ["a", "hang", "b", "c"], jobs=2, options=FAST
        )
        by_index = {o.index: o for o in outcomes}
        assert by_index[0].result == "a"
        assert by_index[2].result == "b"
        assert by_index[3].result == "c"
        assert by_index[1].quarantined and by_index[1].timed_out
        # A timed-out task burns every allowed attempt before quarantine.
        assert by_index[1].attempts == FAST.retries + 1

    def test_failing_initializer_raises_unavailable(self):
        with pytest.raises(WatchdogUnavailable, match="initializer"):
            run_watchdogged(_square, [1, 2], jobs=2, initializer=_bad_init)


class TestOutcomeShape:
    def test_ok_property(self):
        assert TaskOutcome(index=0, result=1).ok
        assert not TaskOutcome(index=0, quarantined=True).ok
