"""The supervised worker pool: per-task deadlines, retry, quarantine.

Task functions live at module level so worker processes can unpickle
them under the spawn/fork start methods alike.
"""

import os
import time

import pytest

from repro.robustness import (
    TaskOutcome,
    WatchdogOptions,
    WatchdogUnavailable,
    WorkerCrashed,
    WorkerPool,
    WorkerTaskError,
    WorkerTimeout,
    run_watchdogged,
)

FAST = WatchdogOptions(task_timeout=0.25, retries=1, backoff=0.01)


def _square(index, payload):
    return payload * payload


def _boom(index, payload):
    raise ValueError(f"boom {payload}")


def _sleepy(index, payload):
    if payload == "hang":
        time.sleep(30)
    return payload


def _bad_init():
    raise RuntimeError("initializer exploded")


def _pool_task(index, payload):
    """WorkerPool task: square ints, obey 'hang'/'crash'/'boom' verbs."""
    if payload == "hang":
        time.sleep(30)
    if payload == "crash":
        os._exit(13)
    if payload == "boom":
        raise ValueError("boom")
    return payload * payload


class TestHappyPath:
    def test_results_in_payload_order(self):
        outcomes = run_watchdogged(_square, [1, 2, 3, 4, 5], jobs=3)
        assert all(o.ok for o in outcomes)
        assert [o.result for o in outcomes] == [1, 4, 9, 16, 25]
        assert all(o.attempts == 1 for o in outcomes)

    def test_any_jobs_value_is_deterministic(self):
        serial = run_watchdogged(_square, list(range(8)), jobs=1)
        wide = run_watchdogged(_square, list(range(8)), jobs=4)
        assert [o.result for o in serial] == [o.result for o in wide]

    def test_single_payload(self):
        (outcome,) = run_watchdogged(_square, [6], jobs=4)
        assert outcome.result == 36 and outcome.index == 0


class TestFailures:
    def test_crashing_task_retried_then_quarantined(self):
        (outcome,) = run_watchdogged(_boom, ["x"], jobs=1, options=FAST)
        assert outcome.quarantined and not outcome.ok
        assert outcome.attempts == 2  # first try + one retry
        assert "boom x" in outcome.error
        assert not outcome.timed_out

    def test_hung_worker_killed_within_twice_the_timeout(self):
        options = WatchdogOptions(task_timeout=0.3, retries=0, backoff=0.01)
        start = time.monotonic()
        (outcome,) = run_watchdogged(_sleepy, ["hang"], jobs=1, options=options)
        elapsed = time.monotonic() - start
        assert outcome.quarantined and outcome.timed_out
        assert "0.3s timeout" in outcome.error
        # The acceptance bound: kill within 2x the task timeout (plus
        # process spawn/teardown overhead).
        assert elapsed < 2 * 0.3 + 1.0, f"kill took {elapsed:.2f}s"

    def test_hang_does_not_poison_neighbours(self):
        outcomes = run_watchdogged(
            _sleepy, ["a", "hang", "b", "c"], jobs=2, options=FAST
        )
        by_index = {o.index: o for o in outcomes}
        assert by_index[0].result == "a"
        assert by_index[2].result == "b"
        assert by_index[3].result == "c"
        assert by_index[1].quarantined and by_index[1].timed_out
        # A timed-out task burns every allowed attempt before quarantine.
        assert by_index[1].attempts == FAST.retries + 1

    def test_failing_initializer_raises_unavailable(self):
        with pytest.raises(WatchdogUnavailable, match="initializer"):
            run_watchdogged(_square, [1, 2], jobs=2, initializer=_bad_init)


class TestOutcomeShape:
    def test_ok_property(self):
        assert TaskOutcome(index=0, result=1).ok
        assert not TaskOutcome(index=0, quarantined=True).ok


@pytest.fixture()
def pool():
    """A started 2-worker pool with a fast poll; always shut down."""
    pool = WorkerPool(
        _pool_task, size=2,
        options=WatchdogOptions(poll_interval=0.01),
    )
    pool.start()
    yield pool
    pool.shutdown()


class TestWorkerPool:
    """The long-lived pool surface the serve process backend rides on."""

    def test_execute_round_trips(self, pool):
        assert pool.execute(6, timeout=10.0) == 36
        assert pool.stats()["spawned"] == 2
        assert pool.stats()["kills"] == 0

    def test_workers_are_real_processes(self, pool):
        pids = pool.worker_pids
        assert len(pids) == 2
        for pid in pids:
            os.kill(pid, 0)  # raises if the process does not exist

    def test_timeout_kills_and_respawns(self, pool):
        pids_before = set(pool.worker_pids)
        start = time.monotonic()
        with pytest.raises(WorkerTimeout, match="0.3s timeout"):
            pool.execute("hang", timeout=0.3)
        elapsed = time.monotonic() - start
        assert elapsed < 2 * 0.3 + 1.0, f"kill took {elapsed:.2f}s"
        stats = pool.stats()
        assert stats["kills"] == 1 and stats["respawns"] == 1
        # The pool is back at full strength with one fresh process, and
        # the killed PID is actually gone.
        pids_after = set(pool.worker_pids)
        assert len(pids_after) == 2
        (killed,) = pids_before - pids_after
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                os.kill(killed, 0)
            except ProcessLookupError:
                break
            time.sleep(0.01)
        else:
            pytest.fail(f"killed worker {killed} still exists")
        # And the pool still works.
        assert pool.execute(3, timeout=10.0) == 9

    def test_crash_is_distinguished_from_timeout(self, pool):
        with pytest.raises(WorkerCrashed, match="died"):
            pool.execute("crash", timeout=10.0)
        stats = pool.stats()
        assert stats["crashes"] == 1 and stats["kills"] == 0
        assert stats["respawns"] == 1
        assert pool.execute(4, timeout=10.0) == 16

    def test_task_exception_keeps_the_worker(self, pool):
        pids_before = set(pool.worker_pids)
        with pytest.raises(WorkerTaskError, match="ValueError: boom"):
            pool.execute("boom", timeout=10.0)
        # A raising task is not a sick worker: same processes, no kills.
        assert set(pool.worker_pids) == pids_before
        assert pool.stats()["respawns"] == 0

    def test_checkout_scratch_survives_checkin_until_respawn(self, pool):
        """cache_key is borrower-owned scratch (the serve backend's
        generation cache); it must persist across checkouts of the same
        worker and reset to None when the worker is replaced."""
        worker = pool.checkout(timeout=5.0)
        worker.cache_key = 7
        pid = worker.process.pid
        with pytest.raises(WorkerTimeout):
            pool.execute_on(worker, "hang", timeout=0.2)
        replacements = [
            w for w in [pool.checkout(timeout=5.0), pool.checkout(timeout=5.0)]
            if w.process.pid != pid
        ]
        assert all(w.cache_key is None for w in replacements)

    def test_failing_initializer_raises_unavailable(self):
        pool = WorkerPool(_pool_task, size=1, initializer=_bad_init)
        with pytest.raises(WatchdogUnavailable, match="initializer"):
            pool.start()

    def test_shutdown_reaps_workers(self):
        pool = WorkerPool(_pool_task, size=2)
        pool.start()
        pids = pool.worker_pids
        pool.shutdown()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            gone = 0
            for pid in pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    gone += 1
            if gone == len(pids):
                return
            time.sleep(0.01)
        pytest.fail(f"workers {pids} survived shutdown")
