"""Mid-solution aborts on the bytecode VM path.

The machine replaces the generator ladder's implicit GC-time cleanup
with an explicit ``close()``: whatever interrupts an enumeration —
``ask(limit=)``, a budget exhaustion, a CLI deadline — must pop the
whole choice-point stack deterministically and leave the engine
reusable, with the trail unwound by the owning ``solve()`` frame.
"""

import time

import pytest

from repro.cli import EXIT_RESOURCE, main
from repro.errors import BudgetExceededError
from repro.prolog import Engine
from repro.robustness.budget import Budget

SEARCH = """
    mem(X, [X|_]).
    mem(X, [_|T]) :- mem(X, T).
    pair(A, B) :- mem(A, [1, 2, 3, 4]), mem(B, [1, 2, 3, 4]).
"""

#: Bounded depth, effectively unbounded backtracking: every goal is a
#: VM-run user predicate, so the deadline must trip inside the machine.
STORM_PROGRAM = SEARCH + """
    storm :- mem(A, [1,2,3,4,5,6,7,8,9]), mem(B, [1,2,3,4,5,6,7,8,9]),
             mem(C, [1,2,3,4,5,6,7,8,9]), mem(D, [1,2,3,4,5,6,7,8,9]),
             mem(E, [1,2,3,4,5,6,7,8,9]), mem(F, [1,2,3,4,5,6,7,8,9]),
             mem(G, [1,2,3,4,5,6,7,8,9]), A = none.
"""


class TestAskLimitAbort:
    def test_limit_unwinds_stack_and_trail(self):
        engine = Engine.from_source(SEARCH, vm=True)
        partial = engine.ask("pair(A, B)", limit=3)
        assert len(partial) == 3
        assert engine.trail.mark() == 0, "abandoned bindings left on trail"
        # The engine is reusable and complete enumeration still works.
        assert len(engine.ask("pair(A, B)")) == 16

    def test_abandoned_solve_generator_closes_machine(self):
        engine = Engine.from_source(SEARCH, vm=True)
        generator = engine.solve("pair(A, B)")
        next(generator)
        generator.close()
        assert engine.trail.mark() == 0
        assert len(engine.ask("pair(A, B)")) == 16


class TestBudgetAbort:
    def test_step_budget_mid_enumeration(self):
        engine = Engine.from_source(SEARCH, vm=True)
        with pytest.raises(BudgetExceededError):
            engine.ask("pair(A, B)", budget=Budget(steps=20))
        assert engine.trail.mark() == 0
        assert len(engine.ask("pair(A, B)")) == 16

    def test_deadline_budget_mid_enumeration(self):
        engine = Engine.from_source(STORM_PROGRAM, vm=True)
        start = time.perf_counter()
        with pytest.raises(BudgetExceededError):
            engine.ask("storm", budget=Budget(deadline=0.2))
        assert time.perf_counter() - start < 2.0
        assert engine.trail.mark() == 0


class TestCliTimeoutOnVm:
    def test_run_vm_timeout_exits_resource(self, tmp_path, capsys):
        program = tmp_path / "storm.pl"
        program.write_text(STORM_PROGRAM)
        start = time.perf_counter()
        exit_code = main(
            ["run", str(program), "storm", "--vm", "--timeout", "0.3"]
        )
        elapsed = time.perf_counter() - start
        captured = capsys.readouterr()
        assert exit_code == EXIT_RESOURCE == 3
        assert elapsed < 2.0, f"took {elapsed:.2f}s to honour a 0.3s deadline"
        assert "Traceback" not in captured.err
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert len(error_lines) == 1

    def test_run_vm_completes_within_generous_timeout(self, family_file,
                                                      capsys):
        exit_code = main(
            ["run", family_file, "grandmother(X, Y)", "--vm",
             "--timeout", "30"]
        )
        assert exit_code == 0
        assert "solution(s)" in capsys.readouterr().out
