"""CLI resource-exhaustion behaviour: exit codes, timeout markers.

Exit-code contract (docs/ROBUSTNESS.md): 2 for program errors (parse,
load, depth), 3 for resource exhaustion (deadline, budget caps). A
``compare`` where one version times out reports a partial result
instead of dying with the first version's traceback.
"""

import json
import time

import pytest

from repro.cli import EXIT_ERROR, EXIT_RESOURCE, build_parser, main

STORM = "between(1, 100000000, X), X > 100000000"


class TestRunTimeout:
    def test_exits_resource_code_quickly(self, family_file, capsys):
        start = time.perf_counter()
        exit_code = main(["run", family_file, STORM, "--timeout", "0.3"])
        elapsed = time.perf_counter() - start
        captured = capsys.readouterr()
        assert exit_code == EXIT_RESOURCE == 3
        assert elapsed < 2.0, f"took {elapsed:.2f}s to honour a 0.3s deadline"
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert len(error_lines) == 1
        assert "deadline" in error_lines[0]

    def test_generous_timeout_is_inert(self, family_file, capsys):
        assert main(["run", family_file, "girl(X)", "--timeout", "30"]) == 0
        assert "jan" in capsys.readouterr().out

    def test_parse_error_keeps_exit_2(self, family_file, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("p(a :- q.\n")
        assert main(["run", str(bad), "p(X)"]) == EXIT_ERROR == 2

    def test_depth_blowup_keeps_exit_2(self, tmp_path, capsys):
        looping = tmp_path / "loop.pl"
        looping.write_text("spin :- spin.\n")
        exit_code = main(["run", str(looping), "spin", "--timeout", "30"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_ERROR
        assert "depth" in captured.err


class TestCompareTimeout:
    def test_partial_result_with_markers(self, family_file, capsys):
        exit_code = main(
            ["compare", family_file, STORM, "--timeout", "0.2"]
        )
        captured = capsys.readouterr()
        assert exit_code == EXIT_RESOURCE
        assert "TIMEOUT (partial)" in captured.out
        assert "incomparable" in captured.out
        # The surviving metrics still print — no traceback anywhere.
        assert "original :" in captured.out
        assert "reordered:" in captured.out
        assert "Traceback" not in captured.err

    def test_timeout_recorded_in_json(self, family_file, tmp_path, capsys):
        out = tmp_path / "telemetry.jsonl"
        main(["compare", family_file, STORM, "--timeout", "0.2",
              "--json", str(out)])
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        timeouts = [r for r in records if r.get("type") == "timeout"]
        assert {r["run"] for r in timeouts} <= {"original", "reordered"}
        assert timeouts, "no timeout record written"

    def test_healthy_compare_untouched(self, family_file, capsys):
        exit_code = main(
            ["compare", family_file, "grandmother(X, Y)", "--timeout", "30"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "TIMEOUT" not in captured.out
        assert "identical set" in captured.out


class TestReorderTimeout:
    def test_healthy_reorder_with_timeout(self, family_file, capsys):
        assert main(["reorder", family_file, "--timeout", "30"]) == 0
        assert "grandmother" in capsys.readouterr().out


class TestFlags:
    def test_robustness_flags_parse_everywhere(self):
        parser = build_parser()
        for command in (["run", "f.pl", "q"], ["compare", "f.pl", "q"],
                        ["profile", "f.pl", "q"], ["reorder", "f.pl"]):
            args = parser.parse_args(
                command + ["--timeout", "1.5", "--faults",
                           "engine.call:raise@1", "--fault-seed", "2"]
            )
            assert args.timeout == 1.5
            assert args.faults == "engine.call:raise@1"
            assert args.fault_seed == 2

    def test_profile_task_timeout_flag(self):
        args = build_parser().parse_args(
            ["profile", "f.pl", "q", "--task-timeout", "5"]
        )
        assert args.task_timeout == 5.0

    def test_pipeline_budget_flags(self):
        args = build_parser().parse_args(
            ["reorder", "f.pl", "--phase-timeout", "2",
             "--astar-node-budget", "9"]
        )
        assert args.phase_timeout == 2.0
        assert args.astar_node_budget == 9


class TestFaultExitCodes:
    def test_engine_raise_fault_maps_to_exit_2(self, family_file, capsys):
        exit_code = main(["run", family_file, "grandmother(X, Y)",
                          "--faults", "engine.call:raise@2"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_ERROR
        assert captured.err.strip() == "error: injected fault at engine.call"

    def test_engine_exhaust_fault_maps_to_exit_3(self, family_file, capsys):
        exit_code = main(["run", family_file, "grandmother(X, Y)",
                          "--faults", "engine.call:exhaust@2"])
        captured = capsys.readouterr()
        assert exit_code == EXIT_RESOURCE
        assert "injected budget exhaustion" in captured.err
