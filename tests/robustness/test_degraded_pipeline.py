"""Per-predicate failure isolation in the reorder pipeline.

A fault inside one predicate's build must degrade *that predicate
only* — its source clauses pass through verbatim, the structured
``degraded`` note appears in the report — while every other predicate's
output stays byte-identical to a healthy run. Whole-run budget
exhaustion, by contrast, must abort the run.
"""

import pytest

from repro.errors import DeadlineExceeded, QueryCancelled
from repro.prolog import Database, Engine
from repro.reorder import ReorderOptions, Reorderer
from repro.robustness import Budget, CancelToken, faults

PROGRAM = """
:- entry(top/2).
base(a, b). base(b, c). base(c, d). base(d, e).
link(X, Y) :- base(X, Y).
hop(X, Z) :- link(X, Y), link(Y, Z).
top(X, Z) :- hop(X, Z), base(Z, _).
"""


def reorder(source=PROGRAM, spec=None, **kwargs):
    if spec is not None:
        faults.install_from_spec(spec)
    try:
        return Reorderer(
            Database.from_source(source),
            kwargs.pop("options", None),
            **kwargs,
        ).reorder()
    finally:
        faults.clear()


def _chunks_by_head(source):
    """Clause texts of a rendered program, grouped by head functor.

    A clause starts at column 0 and continues over indented lines, so
    multi-line bodies stay attached to their head.
    """
    chunks = []
    current = []
    for line in source.splitlines():
        if not line.strip():
            continue
        if not line[0].isspace() and current:
            chunks.append("\n".join(current))
            current = []
        current.append(line)
    if current:
        chunks.append("\n".join(current))
    grouped = {}
    for chunk in chunks:
        head = chunk.split("(", 1)[0].strip()
        grouped.setdefault(head, []).append(chunk)
    return grouped


def last_processed_at(source=PROGRAM):
    """1-based index of the last predicate in processing order (the
    entry point: no other user predicate references it, so degrading
    it leaves every other predicate untouched)."""
    return len(Database.from_source(source).predicates())


class TestDegradation:
    def test_only_faulted_predicate_degrades(self):
        healthy = reorder()
        faulted = reorder(spec=f"phase.build:raise@{last_processed_at()}")
        assert list(faulted.report.degraded) == [("top", 2)]
        reason = faulted.report.degraded[("top", 2)]
        assert reason.startswith("FaultInjected")

    def test_other_predicates_byte_identical(self):
        healthy = _chunks_by_head(reorder().source())
        faulted = _chunks_by_head(
            reorder(spec=f"phase.build:raise@{last_processed_at()}").source()
        )
        # Every clause of every non-degraded predicate is byte-identical
        # between the two outputs; only top/2's clauses changed (its
        # specialized versions in the healthy run, its verbatim source
        # clauses in the faulted one).
        for head in set(healthy) | set(faulted):
            if head.startswith("top"):
                continue
            assert healthy.get(head) == faulted.get(head), (
                f"non-degraded predicate {head!r} changed"
            )
        assert healthy.get("top") != faulted.get("top")

    def test_degraded_output_still_answers_correctly(self):
        original = Engine(Database.from_source(PROGRAM))
        expected = {
            (s["X"], s["Z"]) for s in original.ask("top(X, Z)")
        }
        faulted = reorder(spec=f"phase.build:raise@{last_processed_at()}")
        engine = Engine(Database.from_source(faulted.source()))
        observed = {(s["X"], s["Z"]) for s in engine.ask("top(X, Z)")}
        assert {(str(a), str(b)) for a, b in observed} == {
            (str(a), str(b)) for a, b in expected
        }

    def test_degradation_warning_and_report_shape(self):
        faulted = reorder(spec="phase.build:exhaust@1")
        assert len(faulted.report.degraded) == 1
        ((name, arity),) = faulted.report.degraded
        line = f"degraded {name}/{arity} to source order:"
        assert any(line in warning for warning in faulted.report.warnings)
        assert any(line in note for note in faulted.report.summary().splitlines())
        payload = faulted.report.to_dict()
        assert payload["degraded"][0]["reason"].startswith("BudgetExceededError")

    def test_healthy_report_has_no_degraded_key(self):
        healthy = reorder()
        assert healthy.report.degraded == {}
        assert "degraded" not in healthy.report.to_dict()

    def test_exhaust_without_whole_run_budget_degrades(self):
        # An injected BudgetExceededError with no expired whole-run
        # budget is a *local* failure: degrade, don't abort.
        program = reorder(spec="phase.build:exhaust@1")
        assert len(program.report.degraded) == 1


class TestWholeRunBudget:
    def test_expired_deadline_aborts_the_run(self):
        with pytest.raises(DeadlineExceeded):
            reorder(budget=Budget(deadline=0.0))

    def test_cancelled_token_aborts_the_run(self):
        token = CancelToken()
        token.cancel("shutting down")
        with pytest.raises(QueryCancelled, match="shutting down"):
            reorder(budget=Budget(token=token))

    def test_generous_budget_output_identical_to_unbudgeted(self):
        assert reorder().source() == reorder(
            budget=Budget(deadline=300)
        ).source()


class TestAstarNodeBudget:
    def test_exhausted_search_falls_back_and_stays_correct(self):
        options = ReorderOptions(exhaustive_limit=1, astar_node_budget=1)
        database = Database.from_source(PROGRAM)
        reorderer = Reorderer(database, options)
        program = reorderer.reorder()
        assert reorderer.search_counters.astar_budget_exhausted > 0
        engine = Engine(Database.from_source(program.source()))
        assert engine.succeeds("top(a, Z)")

    def test_default_has_no_fallback(self):
        database = Database.from_source(PROGRAM)
        reorderer = Reorderer(database, ReorderOptions(exhaustive_limit=1))
        reorderer.reorder()
        assert reorderer.search_counters.astar_budget_exhausted == 0

    def test_option_reaches_cache_key(self):
        a = ReorderOptions(astar_node_budget=1).cache_key()
        b = ReorderOptions().cache_key()
        c = ReorderOptions(phase_timeout=2.0).cache_key()
        assert len({a, b, c}) == 3
