"""Behavioural tests for the unified resource budget (docs/ROBUSTNESS.md).

The headline guarantee: a wall-clock deadline threaded through
``Engine.ask`` stops even a ``between/3`` redo storm — backtracking
that makes almost no new calls — within 100 ms of expiry.
"""

from time import perf_counter

import pytest

from repro.errors import (
    BudgetExceededError,
    DeadlineExceeded,
    QueryCancelled,
)
from repro.prolog import Database, Engine
from repro.robustness import Budget, CancelToken

STORM = "between(1, 100000000, X), X > 100000000"

NAT = """
nat(z).
nat(s(N)) :- nat(N).
"""


def engine(source=""):
    return Engine(Database.from_source(source))


class TestDeadline:
    def test_redo_storm_stops_within_100ms_of_deadline(self):
        budget = Budget(deadline=0.05)
        with pytest.raises(DeadlineExceeded):
            engine().ask(STORM, budget=budget)
        overshoot = budget.elapsed() - 0.05
        assert overshoot < 0.1, f"stopped {overshoot:.3f}s past the deadline"

    def test_deadline_error_names_the_site(self):
        with pytest.raises(DeadlineExceeded, match="deadline of 0.01s"):
            engine().ask(STORM, budget=Budget(deadline=0.01))

    def test_generous_deadline_does_not_interfere(self):
        solutions = engine().ask("between(1, 5, X)", budget=Budget(deadline=60))
        assert len(solutions) == 5

    def test_start_is_idempotent(self):
        budget = Budget(deadline=10).start()
        first = budget._expires_at
        budget.start()
        assert budget._expires_at == first
        assert budget.started and not budget.expired
        assert 0 < budget.remaining() <= 10
        assert budget.elapsed() >= 0

    def test_no_deadline_never_expires(self):
        budget = Budget().start()
        assert budget.remaining() is None and not budget.expired


class TestCounters:
    def test_call_budget_stops_infinite_generation(self):
        budget = Budget(calls=50)
        with pytest.raises(BudgetExceededError, match="call budget of 50"):
            engine(NAT).ask("nat(X), X == impossible", budget=budget)
        assert budget.calls == 51

    def test_step_budget_catches_non_calling_backtracking(self):
        budget = Budget(steps=500)
        with pytest.raises(BudgetExceededError, match="step budget of 500"):
            engine().ask("between(1, 1000000, X), fail", budget=budget)
        # The storm redoes without making new calls: steps trip first.
        assert budget.steps > budget.calls

    def test_solution_cap_is_a_clean_stop(self):
        budget = Budget(solutions=5)
        solutions = engine().ask("between(1, 100, X)", budget=budget)
        assert [s["X"] for s in solutions] == [1, 2, 3, 4, 5]
        assert budget.solutions == 5

    def test_engine_level_default_budget(self):
        eng = Engine(Database.from_source(NAT), budget=Budget(calls=50))
        with pytest.raises(BudgetExceededError):
            eng.ask("nat(X), X == impossible")


class TestCancelToken:
    def test_cancel_unwinds_with_query_cancelled(self):
        token = CancelToken()
        token.cancel("operator request")
        with pytest.raises(QueryCancelled, match="operator request"):
            engine().ask(STORM, budget=Budget(token=token))

    def test_first_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled and token.reason == "first"

    def test_uncancelled_token_is_inert(self):
        solutions = engine().ask(
            "between(1, 3, X)", budget=Budget(token=CancelToken())
        )
        assert len(solutions) == 3


class TestAskLimit:
    def test_limit_returns_prefix(self):
        assert len(engine().ask("between(1, 100, X)", limit=3)) == 3

    def test_limit_closes_generator_and_engine_stays_usable(self):
        eng = engine(NAT)
        first = eng.ask("nat(X)", limit=2)
        assert len(first) == 2
        # The abandoned enumeration was closed: the trail unwound, and
        # the engine answers fresh queries correctly.
        again = eng.ask("between(1, 4, X)")
        assert [s["X"] for s in again] == [1, 2, 3, 4]

    def test_limit_zero_keeps_all(self):
        # limit=None (the default) enumerates everything.
        assert len(engine().ask("between(1, 7, X)")) == 7


class TestExceptionTaxonomy:
    def test_family_relationships(self):
        assert issubclass(DeadlineExceeded, BudgetExceededError)
        assert issubclass(QueryCancelled, BudgetExceededError)

    def test_depth_limit_is_not_resource_exhaustion(self):
        # Depth blowups are a program property, not a resource cap; the
        # CLI keeps exit 2 for them (pinned by the seed tests).
        from repro.errors import DepthLimitExceeded

        assert not issubclass(DepthLimitExceeded, BudgetExceededError)
