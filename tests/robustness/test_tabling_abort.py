"""Tabling-table consistency after an aborted fixpoint (satellite 4).

When a budget runs out (or a fault fires) mid-evaluation, the leader's
unwind handler must discard every half-built table: no stale
``complete`` flag, no partial answer set. The same engine must then
answer the same query correctly from a fresh producer run.
"""

import pytest

from repro.errors import BudgetExceededError, FaultInjected
from repro.prolog import Database, Engine
from repro.robustness import Budget, faults

PATHS = """
:- table path/2.
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
"""

ALL_PATHS = {
    ("a", "b"), ("a", "c"), ("a", "d"),
    ("b", "c"), ("b", "d"), ("c", "d"),
}


def engine():
    return Engine(Database.from_source(PATHS))


def pairs(eng):
    return {(str(s["X"]), str(s["Y"])) for s in eng.ask("path(X, Y)")}


def abort_with_budget(eng):
    with pytest.raises(BudgetExceededError):
        eng.ask("path(X, Y)", budget=Budget(calls=4))


class TestBudgetAbort:
    def test_no_table_survives_the_abort(self):
        eng = engine()
        abort_with_budget(eng)
        assert len(eng.tables) == 0

    def test_no_stale_complete_flag(self):
        eng = engine()
        abort_with_budget(eng)
        assert not any(
            table.complete for table in eng.tables.tables.values()
        )

    def test_requery_runs_a_fresh_producer(self):
        eng = engine()
        abort_with_budget(eng)
        misses_before = eng.metrics.table_misses
        assert pairs(eng) == ALL_PATHS
        # The variant was re-entered cold: a fresh miss, then sealed.
        assert eng.metrics.table_misses > misses_before
        assert any(table.complete for table in eng.tables.tables.values())

    def test_requery_answers_match_a_clean_engine(self):
        eng = engine()
        abort_with_budget(eng)
        assert pairs(eng) == pairs(engine())


class TestFaultAbort:
    def test_completion_fault_discards_and_recovers(self):
        eng = engine()
        faults.install_from_spec("tabling.complete:raise@1")
        with pytest.raises(FaultInjected):
            eng.ask("path(X, Y)")
        faults.clear()
        assert len(eng.tables) == 0
        assert pairs(eng) == ALL_PATHS

    def test_completion_exhaust_discards_and_recovers(self):
        eng = engine()
        faults.install_from_spec("tabling.complete:exhaust@1")
        with pytest.raises(BudgetExceededError):
            eng.ask("path(X, Y)")
        faults.clear()
        assert len(eng.tables) == 0
        assert pairs(eng) == ALL_PATHS


class TestDeadlineAbort:
    def test_deadline_mid_fixpoint_leaves_store_requeryable(self):
        # An already-expired deadline: the leader opens its evaluation,
        # the fixpoint's per-round check trips, the discard handler
        # drops the half-built table.
        eng = engine()
        from repro.errors import DeadlineExceeded

        with pytest.raises(DeadlineExceeded):
            eng.ask("path(X, Y)", budget=Budget(deadline=0.0))
        assert len(eng.tables) == 0
        assert pairs(eng) == ALL_PATHS
