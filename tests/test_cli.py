"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

PROGRAM = """
:- entry(grandmother/2).
wife(john, jane). wife(tom, pat).
mother(john, joan). mother(joan, pat). mother(ann, joan).
girl(jan).
female(W) :- girl(W).
female(W) :- wife(_, W).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "family.pl"
    path.write_text(PROGRAM)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reorder_flags(self):
        args = build_parser().parse_args(
            ["reorder", "f.pl", "--no-specialize", "--unfold", "2"]
        )
        assert args.no_specialize and args.unfold == 2


class TestReorderCommand:
    def test_prints_valid_prolog(self, program_file, capsys):
        assert main(["reorder", program_file]) == 0
        output = capsys.readouterr().out
        from repro.prolog import Database, Engine

        engine = Engine(Database.from_source(output))
        assert engine.succeeds("grandmother(X, Y)")

    def test_report_flag(self, program_file, capsys):
        main(["reorder", program_file, "--report"])
        captured = capsys.readouterr()
        assert "goals reordered" in captured.err

    def test_no_specialize(self, program_file, capsys):
        main(["reorder", program_file, "--no-specialize"])
        output = capsys.readouterr().out
        assert "_uu" not in output


class TestAnalyzeCommand:
    def test_sections(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        output = capsys.readouterr().out
        for section in ("entry points:", "recursive:", "fixed", "legal modes:"):
            assert section in output
        assert "grandmother/2" in output


class TestRunCommand:
    def test_answers_and_count(self, program_file, capsys):
        assert main(["run", program_file, "grandmother(X, Y)"]) == 0
        output = capsys.readouterr().out
        assert "X = john" in output
        assert "calls" in output

    def test_failing_query(self, program_file, capsys):
        main(["run", program_file, "grandmother(jane, jane)"])
        assert "no" in capsys.readouterr().out


class TestCompareCommand:
    def test_improvement_reported(self, program_file, capsys):
        assert main(["compare", program_file, "grandmother(X, Y)"]) == 0
        output = capsys.readouterr().out
        assert "ratio" in output
        assert "identical set" in output

    def test_runtime_tests_flag(self, program_file, capsys):
        code = main(
            ["compare", program_file, "grandmother(X, Y)",
             "--no-specialize", "--runtime-tests"]
        )
        assert code == 0

    def test_zero_call_run_prints_na_ratio(self, program_file, capsys):
        # 'true' is control, not a charged call: both runs make 0 calls,
        # so the ratio is undefined rather than a ZeroDivisionError/inf.
        assert main(["compare", program_file, "true"]) == 0
        captured = capsys.readouterr()
        assert "ratio    : n/a" in captured.out
        assert "inf" not in captured.out
        assert "ratio is undefined" in captured.err


class TestCompareExitCode:
    def test_matching_sets(self):
        from repro.cli import compare_exit_code

        assert compare_exit_code(3, 3, matches=True) == 0
        assert compare_exit_code(0, 0, matches=True) == 0

    def test_differing_sets(self):
        from repro.cli import compare_exit_code

        assert compare_exit_code(3, 3, matches=False) == 1

    def test_asymmetric_emptiness_is_nonzero(self):
        from repro.cli import compare_exit_code

        assert compare_exit_code(2, 0, matches=False) == 1
        assert compare_exit_code(0, 2, matches=False) == 1


class TestExplainCommand:
    def test_shows_candidates(self, program_file, capsys):
        assert main(["explain", program_file, "grandmother/2", "ui"]) == 0
        output = capsys.readouterr().out
        assert "grandmother/2 in mode (-, +)" in output
        assert ">>" in output


class TestTablesCommand:
    def test_figures_only(self, capsys):
        assert main(["tables", "fig"]) == 0
        output = capsys.readouterr().out
        assert "130.24" in output and "78.968" in output

    def test_table1(self, capsys):
        assert main(["tables", "1"]) == 0
        assert "restrictions" in capsys.readouterr().out


class TestVerifyCommand:
    def test_passes_on_honest_reordering(self, program_file, capsys):
        assert main(["verify", program_file, "--samples", "3"]) == 0
        output = capsys.readouterr().out
        assert "0 failures" in output

    def test_warren_method(self, program_file, capsys):
        assert main(
            ["compare", program_file, "grandmother(X, Y)", "--method", "warren"]
        ) == 0
        assert "identical set" in capsys.readouterr().out
