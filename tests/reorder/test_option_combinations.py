"""Option-matrix tests: every ReorderOptions combination must produce a
set-equivalent program on a workload exercising all constructs."""

import itertools

import pytest

from repro.prolog import Database, Engine
from repro.reorder.system import ReorderOptions, Reorderer

SOURCE = """
:- entry(summary/2).
item(1). item(2). item(3). item(4). item(5). item(6).
flag(3). flag(5).
score(1, 10). score(2, 40). score(3, 15). score(4, 70). score(5, 5). score(6, 90).

good(X) :- item(X), flag(X).
wrapped(X) :- good(X).
pick(X) :- item(X), score(X, S), S > 30, !.
choice(X) :- ( good(X) ; item(X), score(X, S), S > 60 ).
summary(X, Total) :-
    wrapped(X),
    findall(S, (item(I), score(I, S), I =< X), Scores),
    sum(Scores, Total).
sum([], 0).
sum([X | Xs], T) :- sum(Xs, R), T is X + R.
:- recursive(sum/2).
:- legal_mode(sum(+, -), sum(+, +)).
:- cost(sum/2, [+, ?], 12, 1.0).
"""

QUERIES = [
    "good(X)", "wrapped(X)", "pick(X)", "choice(X)", "summary(X, T)",
    "summary(5, T)", "pick(4)", "choice(9)",
]


def reference_answers():
    database = Database.from_source(SOURCE)
    engine = Engine(database)
    return {
        query: sorted(s.key() for s in engine.ask(query)) for query in QUERIES
    }


REFERENCE = reference_answers()

OPTION_MATRIX = list(
    itertools.product([True, False], repeat=4)
)  # goals, clauses, specialize, runtime_tests


@pytest.mark.parametrize(
    "reorder_goals,reorder_clauses,specialize,runtime_tests", OPTION_MATRIX
)
def test_option_combination_equivalent(
    reorder_goals, reorder_clauses, specialize, runtime_tests
):
    options = ReorderOptions(
        reorder_goals=reorder_goals,
        reorder_clauses=reorder_clauses,
        specialize=specialize,
        runtime_tests=runtime_tests,
    )
    program = Reorderer(Database.from_source(SOURCE), options).reorder()
    engine = program.engine()
    for query in QUERIES:
        assert sorted(s.key() for s in engine.ask(query)) == REFERENCE[query], (
            query,
            options,
        )


@pytest.mark.parametrize("unfold_rounds", [0, 1, 2, 3])
def test_unfold_rounds_equivalent(unfold_rounds):
    options = ReorderOptions(unfold_rounds=unfold_rounds)
    program = Reorderer(Database.from_source(SOURCE), options).reorder()
    engine = program.engine()
    for query in QUERIES:
        assert sorted(s.key() for s in engine.ask(query)) == REFERENCE[query], (
            query,
            unfold_rounds,
        )


@pytest.mark.parametrize("exhaustive_limit", [0, 1, 3, 10])
def test_exhaustive_limit_equivalent(exhaustive_limit):
    # Any limit (forcing A* everywhere, or exhaustive everywhere) must
    # yield equivalent — and equally cheap — programs.
    options = ReorderOptions(exhaustive_limit=exhaustive_limit)
    program = Reorderer(Database.from_source(SOURCE), options).reorder()
    engine = program.engine()
    for query in QUERIES:
        assert sorted(s.key() for s in engine.ask(query)) == REFERENCE[query]


def test_astar_and_exhaustive_programs_equal_cost():
    via_astar = Reorderer(
        Database.from_source(SOURCE), ReorderOptions(exhaustive_limit=1)
    ).reorder()
    via_exhaustive = Reorderer(
        Database.from_source(SOURCE), ReorderOptions(exhaustive_limit=10)
    ).reorder()
    for query in QUERIES:
        _, a = via_astar.engine().run(query)
        _, e = via_exhaustive.engine().run(query)
        assert a.calls == e.calls, query
