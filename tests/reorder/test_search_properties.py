"""Property-based tests of the goal-order search.

Random programs are synthesised whose per-goal statistics are fixed by
``:- cost`` declarations, so the search operates on a known cost
surface. Invariants:

* A* returns an order with the same model cost as exhaustive search
  (optimality of the admissible-prefix best-first search);
* both respect arbitrary (acyclic) precedence constraints;
* the chosen order's model cost is never above the source order's.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.declarations import Declarations
from repro.analysis.modes import bind_head_states, parse_mode_string
from repro.markov.predicate_model import CostModel
from repro.prolog import Database, parse_term
from repro.prolog.database import body_goals, split_clause
from repro.reorder.goal_search import astar_search, exhaustive_search


@st.composite
def cost_programs(draw):
    """(source text, goal count, constraints) with declared costs."""
    goal_count = draw(st.integers(min_value=2, max_value=5))
    lines = []
    for index in range(goal_count):
        cost = draw(st.floats(min_value=0.5, max_value=40.0))
        solutions = draw(st.floats(min_value=0.05, max_value=12.0))
        prob = min(1.0, solutions)
        lines.append(f"g{index}(1).")
        lines.append(
            f":- cost(g{index}/1, [?], {cost:.3f}, {prob:.3f}, {solutions:.3f})."
        )
    body = ", ".join(f"g{i}(X)" for i in range(goal_count))
    lines.append(f"target(X) :- {body}.")
    # Random acyclic constraints: i before j for i < j only.
    constraints = set()
    for i in range(goal_count):
        for j in range(i + 1, goal_count):
            if draw(st.booleans()) and draw(st.booleans()):
                constraints.add((i, j))
    return "\n".join(lines), goal_count, frozenset(constraints)


def _setup(source):
    database = Database.from_source(source)
    model = CostModel(database, Declarations.from_database(database))
    clause = database.clauses(("target", 1))[0]
    goals = body_goals(clause.body)
    states = {}
    bind_head_states(clause.head, parse_mode_string("-"), states)
    return model, goals, states


class TestAStarOptimality:
    @given(cost_programs())
    @settings(max_examples=60, deadline=None)
    def test_astar_matches_exhaustive(self, program):
        source, _, constraints = program
        model, goals, states = _setup(source)
        exhaustive = exhaustive_search(
            goals, dict(states), model, set(constraints)
        )
        astar = astar_search(goals, dict(states), model, set(constraints))
        assert (exhaustive is None) == (astar is None)
        if exhaustive is not None:
            assert astar.evaluation.total_cost == pytest.approx(
                exhaustive.evaluation.total_cost, rel=1e-9
            )

    @given(cost_programs())
    @settings(max_examples=40, deadline=None)
    def test_constraints_respected(self, program):
        source, _, constraints = program
        model, goals, states = _setup(source)
        for search in (exhaustive_search, astar_search):
            result = search(goals, dict(states), model, set(constraints))
            if result is None:
                continue
            position = {g: r for r, g in enumerate(result.order)}
            for before, after in constraints:
                assert position[before] < position[after]

    @given(cost_programs())
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_source_order(self, program):
        source, goal_count, constraints = program
        model, goals, states = _setup(source)
        result = exhaustive_search(goals, dict(states), model, set(constraints))
        assert result is not None  # declared-cost goals are legal anywhere
        source_eval = model.evaluate_goals(list(goals), dict(states))
        assert result.evaluation.total_cost <= source_eval.total_cost * (1 + 1e-9)

    @given(cost_programs())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, program):
        source, _, constraints = program
        model, goals, states = _setup(source)
        first = astar_search(goals, dict(states), model, set(constraints))
        second = astar_search(goals, dict(states), model, set(constraints))
        assert first.order == second.order
