"""The paper's §V-D ``build/4`` example: partly-instantiated structures
and the conservative mode choice.

The dilemma: saying ``append(+,-,-)`` returns ``(+,-,-)`` rejects a
good reordering; saying it returns ``(+,-,+)`` admits an illegal one.
"We must forego the first rather than risk the second" — with the
conservative declared output ``(+,?,?)``, both the good and the illegal
reorderings are rejected and the source order survives.
"""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.mode_inference import ModeInference
from repro.analysis.modes import parse_mode_string
from repro.prolog import Database, Engine, parse_term
from repro.prolog.database import body_goals, split_clause
from repro.reorder.legality import order_is_legal
from repro.reorder.system import Reorderer

SOURCE = """
:- entry(build/4).
:- legal_mode(append(+, +, ?), append(+, +, +)).
:- legal_mode(append(+, ?, ?), append(+, ?, ?)).
:- legal_mode(append(?, ?, +), append(?, ?, +)).
:- recursive(append/3).
:- cost(append/3, [+, ?, ?], 6, 1.0).
:- cost(append/3, [?, ?, +], 6, 1.0).
:- legal_mode(transform(+, ?), transform(+, +)).

append([X | Y], Z, [X | W]) :- append(Y, Z, W).
append([], X, X).

transform(a, [1]).  transform(b, [2, 2]).  transform(c, [3]).

build(L1, L2, L3, L4) :-
    transform(L2, L2a),
    transform(L3, L3a),
    append(L1, L2a, L2b),
    append(L2b, L3a, L4).
"""

BUILD_MODE = parse_mode_string("+++-")


@pytest.fixture(scope="module")
def setup():
    database = Database.from_source(SOURCE)
    declarations = Declarations.from_database(database)
    inference = ModeInference(database, declarations)
    clause = database.clauses(("build", 4))[0]
    goals = body_goals(clause.body)
    return database, inference, clause, goals


class TestLegality:
    def test_source_order_legal(self, setup):
        _, inference, clause, goals = setup
        assert order_is_legal(clause.head, goals, BUILD_MODE, inference)

    def test_paper_good_order_rejected(self, setup):
        # build :- append(L1,L2a,L2b), transform(L2,L2a),
        #          append(L2b,L3a,L4), transform(L3,L3a).
        # Good at run time, but under the conservative modes append's
        # third argument comes back '?', and the second append demands
        # '+' on its first: rejected.
        _, inference, clause, goals = setup
        transform2, transform3, append1, append2 = goals
        order = [append1, transform2, append2, transform3]
        assert not order_is_legal(clause.head, order, BUILD_MODE, inference)

    def test_paper_illegal_order_rejected(self, setup):
        # build :- append(L1,L2a,L2b), append(L2b,L3a,L4),
        #          transform(L2,L2a), transform(L3,L3a).
        # Would crash/diverge at run time; must be rejected too.
        _, inference, clause, goals = setup
        transform2, transform3, append1, append2 = goals
        order = [append1, append2, transform2, transform3]
        assert not order_is_legal(clause.head, order, BUILD_MODE, inference)


class TestEndToEnd:
    def test_reorderer_keeps_safe_order(self, setup):
        database, _, _, _ = setup
        program = Reorderer(database).reorder()
        version = program.version_name(("build", 4), BUILD_MODE)
        (clause,) = program.database.clauses((version, 4))
        goals = body_goals(clause.body)
        # The two transforms still precede their appends.
        names = [str(g).split("(")[0].split("_")[0] for g in goals]
        assert names.index("transform") < names.index("append")
        first_append = names.index("append")
        assert names[:first_append].count("transform") == 2

    def test_answers_preserved(self, setup):
        database, _, _, _ = setup
        program = Reorderer(database).reorder()
        query = "build([9], b, c, Out)"
        original = sorted(s.key() for s in Engine(database).ask(query))
        reordered = sorted(s.key() for s in program.engine().ask(query))
        assert original == reordered
        assert original  # [9, 2, 2, 3]

    def test_difference_list_mode(self, setup):
        # append in mode (+,-,-) builds an open list; the engine must
        # handle the partial structure the analysis calls '?'.
        database, _, _, _ = setup
        engine = Engine(database)
        (solution,) = engine.ask("append([1, 2], Tail, Open), Tail = [x]")
        assert str(solution["Open"]) == "[1, 2, x]"
