"""Tests for the set-equivalence verifier."""

import pytest

from repro.prolog import Database
from repro.prolog.database import Clause
from repro.prolog.terms import Atom, Struct, Var
from repro.reorder.system import Reorderer
from repro.reorder.verify import verify_reordering

SOURCE = """
wife(john, jane). wife(tom, pat).
mother(john, joan). mother(joan, pat). mother(ann, joan).
girl(jan).
female(W) :- girl(W).
female(W) :- wife(_, W).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""


@pytest.fixture(scope="module")
def verified():
    database = Database.from_source(SOURCE)
    program = Reorderer(database).reorder()
    return database, program, verify_reordering(database, program)


class TestHonestReordering:
    def test_passes(self, verified):
        _, _, report = verified
        assert report.passed, report.format()

    def test_covers_every_predicate_and_mode(self, verified):
        database, _, report = verified
        queried = {check.query.split("(")[0] for check in report.checks}
        assert {"grandmother", "parent", "female", "wife", "mother"} <= queried

    def test_format_mentions_counts(self, verified):
        _, _, report = verified
        text = report.format()
        assert "0 failures" in text
        assert "identical" in text


class TestBrokenReordering:
    def test_detects_dropped_answers(self):
        database = Database.from_source(SOURCE)
        program = Reorderer(database).reorder()
        # Sabotage: drop one wife fact from the reordered database.
        clauses = program.database.clauses(("wife", 2))
        program.database.replace_predicate(("wife", 2), clauses[:-1])
        report = verify_reordering(database, program)
        assert not report.passed
        assert report.failures

    def test_detects_extra_answers(self):
        database = Database.from_source(SOURCE)
        program = Reorderer(database).reorder()
        extra = Clause(Struct("girl", (Atom("impostor"),)), Atom("true"))
        clauses = program.database.clauses(("girl", 1)) + [extra]
        program.database.replace_predicate(("girl", 1), clauses)
        report = verify_reordering(database, program)
        assert not report.passed

    def test_detects_runtime_errors(self):
        database = Database.from_source(SOURCE)
        program = Reorderer(database).reorder()
        broken = Clause(
            Struct("female", (Var("X"),)),
            Struct("is", (Var("Y"), Struct("+", (Var("X"), 1)))),
        )
        program.database.replace_predicate(("female", 1), [broken])
        report = verify_reordering(database, program)
        assert not report.passed
        assert any(
            check.error and "raised" in check.error for check in report.failures
        )


class TestSideEffectNotes:
    def test_output_difference_noted_not_failed(self):
        source = """
        t(1). t(2).
        show :- t(X), write(X), fail.
        show.
        """
        database = Database.from_source(source)
        program = Reorderer(database).reorder()
        # Sabotage output order only: swap the t/1 facts (set-equal,
        # different write order).
        clauses = list(program.database.clauses(("t", 1)))
        program.database.replace_predicate(("t", 1), list(reversed(clauses)))
        report = verify_reordering(database, program)
        assert report.passed  # answers still identical as sets
        assert report.output_mismatches
