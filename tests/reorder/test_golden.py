"""Golden-output tests for the staged pipeline's cold path.

The fixtures under ``tests/reorder/golden/`` were captured from the
pre-pipeline monolithic ``Reorderer`` on every seed program; the
pipeline must reproduce them byte-for-byte (report dictionary and
emitted source alike), so any accidental reordering of operations in a
refactor shows up as a diff here.
"""

import json
from pathlib import Path

import pytest

from repro.programs import REGISTRY
from repro.prolog import Database
from repro.reorder import Reorderer

GOLDEN_DIR = Path(__file__).parent / "golden"
REPO_ROOT = Path(__file__).resolve().parents[2]

FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def load_fixture(path):
    return json.loads(path.read_text())


def database_for(name):
    """The fixture's program: a REGISTRY key, or a ``.pl`` path
    relative to the repository root."""
    if name.endswith(".pl"):
        return Database.from_source((REPO_ROOT / name).read_text())
    return Database.from_source(REGISTRY[name].source())


def test_every_fixture_present():
    # Seven paper programs plus the two shipped example files.
    assert len(FIXTURES) == 9


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_report_byte_identical(path):
    fixture = load_fixture(path)
    program = Reorderer(database_for(fixture["name"])).reorder()
    assert json.dumps(program.report.to_dict(), sort_keys=True) == json.dumps(
        fixture["report"], sort_keys=True
    )


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_source_byte_identical(path):
    fixture = load_fixture(path)
    program = Reorderer(database_for(fixture["name"])).reorder()
    assert program.source() == fixture["source"]


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_source_round_trips(path):
    # The emitted source must re-consult cleanly and preserve the
    # predicate and table sets (the ``:- table`` directives come back).
    fixture = load_fixture(path)
    program = Reorderer(database_for(fixture["name"])).reorder()
    reloaded = Database.from_source(program.source())
    assert set(reloaded.predicates()) == set(program.database.predicates())
    assert reloaded.tabled == program.database.tabled


def test_tabled_program_round_trip_keeps_directives():
    fixture = load_fixture(GOLDEN_DIR / "example_graph_closure.json")
    program = Reorderer(database_for(fixture["name"])).reorder()
    source = program.source()
    assert program.database.tabled  # graph closure tables path/2
    for name, arity in sorted(program.database.tabled):
        assert f":- table {name}/{arity}." in source
    reloaded = Database.from_source(source)
    assert reloaded.tabled == program.database.tabled


def test_summary_covers_decisions_warnings_and_failures():
    program = Reorderer(database_for("family_tree")).reorder()
    report = program.report
    summary = report.summary()
    # Every decision line appears, prefixed by "pred/arity (mode)".
    for (indicator, mode), notes in report.decisions.items():
        for note in notes:
            assert note in summary
    for warning in report.warnings:
        assert f"warning: {warning}" in summary
    # Calibration failures get their own prefixed lines.
    report.calibration_failures = ["calibration failed for p/1 mode (+)"]
    assert (
        "calibration failure: calibration failed for p/1 mode (+)"
        in report.summary()
    )


def test_to_dict_calibration_failures_key_only_when_present():
    program = Reorderer(database_for("family_tree")).reorder()
    report = program.report
    assert "calibration_failures" not in report.to_dict()
    report.calibration_failures = ["calibration failed for p/1 mode (+)"]
    payload = report.to_dict()
    assert payload["calibration_failures"] == [
        "calibration failed for p/1 mode (+)"
    ]
