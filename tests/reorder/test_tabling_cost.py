"""Tabling integration with the cost model and the reorderer: amortized
call costs, report surfacing, and directive round-tripping."""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.modes import parse_mode_string
from repro.markov.goal_stats import GoalStats
from repro.markov.predicate_model import CostModel
from repro.prolog import Database
from repro.prolog.tabling import (
    DEFAULT_RECALL_WEIGHT,
    TABLED_RECURSIVE_STATS,
    tabled_stats,
)
from repro.reorder import ReorderOptions, Reorderer


def model_for(source, **kwargs):
    database = Database.from_source(source)
    return CostModel(
        database, Declarations.from_database(database), **kwargs
    )


CLOSURE = """
:- table path/2.
:- legal_mode(path(+, -)).
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
"""


class TestTabledStats:
    def test_weight_zero_is_first_call(self):
        first = GoalStats(cost=40.0, solutions=3.0, prob=0.9)
        assert tabled_stats(first, recall_weight=0.0).cost == 40.0

    def test_weight_one_is_pure_recall(self):
        first = GoalStats(cost=40.0, solutions=3.0, prob=0.9)
        assert tabled_stats(first, recall_weight=1.0).cost == pytest.approx(
            1.0 + 3.0
        )

    def test_default_weight_mixes(self):
        first = GoalStats(cost=40.0, solutions=3.0, prob=0.9)
        mixed = tabled_stats(first)
        expected = (
            (1 - DEFAULT_RECALL_WEIGHT) * 40.0
            + DEFAULT_RECALL_WEIGHT * 4.0
        )
        assert mixed.cost == pytest.approx(expected)
        assert mixed.solutions == 3.0 and mixed.prob == 0.9

    def test_cost_never_below_one(self):
        first = GoalStats(cost=1.0, solutions=0.0, prob=0.1)
        assert tabled_stats(first).cost >= 1.0

    def test_weight_out_of_range_rejected(self):
        first = GoalStats(cost=2.0, solutions=1.0, prob=0.5)
        with pytest.raises(ValueError):
            tabled_stats(first, recall_weight=-0.1)
        with pytest.raises(ValueError):
            tabled_stats(first, recall_weight=1.5)


class TestCostModelIntegration:
    def test_is_tabled_via_directive(self):
        model = model_for(CLOSURE)
        assert model.is_tabled(("path", 2))
        assert not model.is_tabled(("edge", 2))

    def test_is_tabled_via_table_all(self):
        model = model_for(
            CLOSURE.replace(":- table path/2.\n", ""), table_all=True
        )
        assert model.is_tabled(("path", 2))
        assert not model.is_tabled(("undefined", 7))

    def test_tabled_call_is_cheaper(self):
        tabled = model_for(CLOSURE)
        untabled = model_for(CLOSURE.replace(":- table path/2.\n", ""))
        mode = parse_mode_string("+-")
        tabled_cost = tabled.predicate_stats(("path", 2), mode).cost
        untabled_cost = untabled.predicate_stats(("path", 2), mode).cost
        assert tabled_cost < untabled_cost

    def test_tabled_recursion_needs_no_declaration(self):
        model = model_for(CLOSURE)
        model.predicate_stats(("path", 2), parse_mode_string("+-"))
        assert not any("recursive" in w for w in model.warnings)

    def test_untabled_recursion_still_warns(self):
        model = model_for(CLOSURE.replace(":- table path/2.\n", ""))
        model.predicate_stats(("path", 2), parse_mode_string("+-"))
        assert any("recursive" in w for w in model.warnings)

    def test_tabled_recursive_stats_shape(self):
        assert TABLED_RECURSIVE_STATS.cost == 2.0
        assert TABLED_RECURSIVE_STATS.solutions == 1.0


class TestReordererIntegration:
    def test_report_lists_tabled_predicates(self):
        reorderer = Reorderer(Database.from_source(CLOSURE))
        program = reorderer.reorder()
        assert program.report.to_dict()["tabled"] == ["path/2"]

    def test_table_all_option_reaches_the_model(self):
        reorderer = Reorderer(
            Database.from_source(CLOSURE.replace(":- table path/2.\n", "")),
            ReorderOptions(table_all=True),
        )
        reorderer.reorder()
        assert reorderer.model.table_all
        assert "path/2" in reorderer.report.to_dict()["tabled"]

    def test_source_round_trips_the_directive(self):
        program = Reorderer(Database.from_source(CLOSURE)).reorder()
        source = program.source()
        assert ":- table" in source
        database = Database.from_source(source)
        assert database.tabled, "reordered program lost its tabled set"

    def test_reordered_program_still_correct_under_tabling(self):
        program = Reorderer(Database.from_source(CLOSURE)).reorder()
        engine = program.engine()
        answers = {
            (str(s["X"]), str(s["Y"])) for s in engine.ask("path(X, Y)")
        }
        assert ("a", "d") in answers and len(answers) == 6
