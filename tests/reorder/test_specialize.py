"""Unit tests for per-mode specialisation and dispatchers (§VII)."""

from repro.analysis.modes import ModeItem, parse_mode_string
from repro.prolog import Engine, Database
from repro.prolog.database import Database
from repro.prolog.writer import clause_to_string
from repro.reorder.specialize import (
    build_dispatcher,
    mode_suffix,
    rename_goal,
    specialized_indicator,
    specialized_name,
)
from repro.prolog import parse_term


def mode(text):
    return parse_mode_string(text)


class TestNaming:
    def test_suffix_paper_convention(self):
        assert mode_suffix(mode("--")) == "uu"
        assert mode_suffix(mode("-+")) == "ui"
        assert mode_suffix(mode("+-")) == "iu"
        assert mode_suffix(mode("++")) == "ii"

    def test_any_suffix(self):
        assert mode_suffix((ModeItem.ANY,)) == "a"

    def test_specialized_name(self):
        assert specialized_name("aunt", mode("-+")) == "aunt_ui"

    def test_zero_arity_keeps_name(self):
        assert specialized_name("main", ()) == "main"

    def test_specialized_indicator(self):
        assert specialized_indicator(("aunt", 2), mode("--")) == ("aunt_uu", 2)


class TestRenameGoal:
    def test_struct(self):
        goal = parse_term("aunt(X, Y)")
        renamed = rename_goal(goal, "aunt_uu")
        assert renamed.name == "aunt_uu"
        assert renamed.args == goal.args

    def test_atom(self):
        assert rename_goal(parse_term("go"), "go_x").name == "go_x"


class TestDispatcher:
    def test_routes_by_instantiation(self):
        versions = {
            mode("--"): "p_uu",
            mode("-+"): "p_ui",
            mode("+-"): "p_iu",
            mode("++"): "p_ii",
        }
        dispatcher = build_dispatcher(("p", 2), versions)
        database = Database.from_source(
            """
            p_uu(uu, 1). p_ui(ui, 2). p_iu(iu, 3). p_ii(ii, 4).
            """
        )
        database.add_clause(dispatcher)
        engine = Engine(database)
        # (-,-) route
        (solution,) = engine.ask("p(A, B)")
        assert str(solution["A"]) == "uu"
        # (+,-) route
        assert engine.succeeds("p(iu, B)")
        assert not engine.succeeds("p(uu, B)")
        # (+,+) route
        assert engine.succeeds("p(ii, 4)")
        # (-,+) route
        (solution,) = engine.ask("p(A, 2)")
        assert str(solution["A"]) == "ui"

    def test_missing_mode_falls_back_to_closest(self):
        versions = {mode("++"): "p_ii"}
        dispatcher = build_dispatcher(("p", 2), versions)
        database = Database.from_source("p_ii(a, b).")
        database.add_clause(dispatcher)
        engine = Engine(database)
        # All routes exist and lead to p_ii.
        assert engine.succeeds("p(X, Y)")

    def test_merged_versions_share_target(self):
        versions = {
            mode("--"): "p_ii",
            mode("-+"): "p_ii",
            mode("+-"): "p_ii",
            mode("++"): "p_ii",
        }
        dispatcher = build_dispatcher(("p", 2), versions)
        text = clause_to_string(dispatcher.to_term())
        assert "p_ii" in text

    def test_zero_arity(self):
        dispatcher = build_dispatcher(("go", 0), {(): "go_v"})
        database = Database.from_source("go_v.")
        database.add_clause(dispatcher)
        assert Engine(database).succeeds("go")

    def test_arity_three(self):
        versions = {m: "q_" + mode_suffix(m) for m in [
            mode("---"), mode("--+"), mode("-+-"), mode("-++"),
            mode("+--"), mode("+-+"), mode("++-"), mode("+++"),
        ]}
        dispatcher = build_dispatcher(("q", 3), versions)
        source = " ".join(f"q_{mode_suffix(m)}(1, 2, 3)." for m in versions)
        database = Database.from_source(source)
        database.add_clause(dispatcher)
        engine = Engine(database)
        assert engine.succeeds("q(1, B, C)")
        assert engine.succeeds("q(1, 2, 3)")
