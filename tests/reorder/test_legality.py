"""Unit tests for the goal-order legality scan (§VI-B-1)."""

from repro.analysis.declarations import Declarations
from repro.analysis.mode_inference import ModeInference
from repro.analysis.modes import parse_mode_string
from repro.prolog import Database, parse_term
from repro.prolog.database import body_goals, split_clause
from repro.reorder.legality import legal_orders, order_is_legal


def setup(source):
    database = Database.from_source(source)
    return ModeInference(database, Declarations.from_database(database))


def clause_parts(text):
    head, body = split_clause(parse_term(text))
    return head, body_goals(body)


def mode(text):
    return parse_mode_string(text)


class TestOrderIsLegal:
    def test_source_order_legal(self):
        inference = setup("gen(1). gen(2).")
        head, goals = clause_parts("f(X, Y) :- gen(X), Y is X + 1")
        assert order_is_legal(head, goals, mode("--"), inference)

    def test_swapped_order_illegal(self):
        inference = setup("gen(1). gen(2).")
        head, goals = clause_parts("f(X, Y) :- gen(X), Y is X + 1")
        assert not order_is_legal(head, list(reversed(goals)), mode("--"), inference)

    def test_input_mode_changes_legality(self):
        inference = setup("gen(1). gen(2).")
        head, goals = clause_parts("f(X, Y) :- gen(X), Y is X + 1")
        # With X already ground, 'is' may run first.
        assert order_is_legal(head, list(reversed(goals)), mode("+-"), inference)

    def test_permutation_paper_example(self):
        # §IV-D-7: swapping the goals of permutation's first clause
        # makes mode (+,-) unsafe.
        inference = setup(
            """
            :- legal_mode(select(?, +, ?), select(+, +, +)).
            :- legal_mode(select(-, -, +), select(+, +, +)).
            :- legal_mode(permutation(+, -)).
            :- legal_mode(permutation(-, +)).
            :- recursive(select/3).
            :- recursive(permutation/2).
            select(X, [X | Xs], Xs).
            select(X, [Y | Xs], [Y | Ys]) :- select(X, Xs, Ys).
            permutation(Xs, [X | Ys]) :- select(X, Xs, Zs), permutation(Zs, Ys).
            permutation([], []).
            """
        )
        head, goals = clause_parts(
            "permutation(Xs, [X | Ys]) :- select(X, Xs, Zs), permutation(Zs, Ys)"
        )
        assert order_is_legal(head, goals, mode("+-"), inference)
        swapped = list(reversed(goals))
        assert not order_is_legal(head, swapped, mode("+-"), inference)


class TestLegalOrders:
    def test_enumerates(self):
        inference = setup("gen(1). cheap(2).")
        head, goals = clause_parts("f(X) :- gen(X), cheap(X)")
        orders = legal_orders(head, goals, mode("-"), inference)
        assert set(orders) == {(0, 1), (1, 0)}

    def test_filters_illegal(self):
        inference = setup("gen(1).")
        head, goals = clause_parts("f(X, Y) :- gen(X), Y is X * 2, Y > 0")
        orders = legal_orders(head, goals, mode("--"), inference)
        # gen must come first; 'is' before '>'.
        assert orders == [(0, 1, 2)]

    def test_none_legal(self):
        inference = setup("f(1).")
        head, goals = clause_parts("g(X) :- X > 0, X < 5")
        assert legal_orders(head, goals, mode("-"), inference) == []
