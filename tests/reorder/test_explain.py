"""Unit tests for the reordering explanation facility."""

import pytest

from repro.analysis.modes import parse_mode_string
from repro.prolog import Database
from repro.reorder.explain import explain_predicate
from repro.reorder.system import Reorderer

SOURCE = """
wide(1). wide(2). wide(3). wide(4). wide(5). wide(6).
narrow(2). narrow(4).
combo(X, Y) :- wide(X), narrow(X), Y is X * 2.
guarded(X) :- wide(X), write(X), narrow(X).
probe(X) :- wide(X), var(X).
"""


@pytest.fixture(scope="module")
def reorderer():
    return Reorderer(Database.from_source(SOURCE))


def mode(text):
    return parse_mode_string(text)


class TestExplainPredicate:
    def test_lists_all_candidates(self, reorderer):
        text = explain_predicate(reorderer, ("combo", 2), mode("--"))
        # 3 goals: 6 permutations, each on its own line.
        assert text.count("wide(X)") >= 6

    def test_marks_chosen(self, reorderer):
        text = explain_predicate(reorderer, ("combo", 2), mode("--"))
        chosen_lines = [l for l in text.splitlines() if l.strip().startswith(">>")]
        assert len(chosen_lines) == 1
        assert "narrow(X), wide(X)" in chosen_lines[0]

    def test_marks_illegal(self, reorderer):
        text = explain_predicate(reorderer, ("combo", 2), mode("--"))
        assert "ILLEGAL" in text  # 'is' before its inputs are bound

    def test_chosen_is_cheapest_legal(self, reorderer):
        text = explain_predicate(reorderer, ("combo", 2), mode("--"))
        lines = [l for l in text.splitlines() if "cost" in l]
        # Legal candidates are sorted by cost: the first is the chosen.
        assert lines[0].strip().startswith(">>")

    def test_immobile_blocks_labelled(self, reorderer):
        text = explain_predicate(reorderer, ("guarded", 1), mode("-"))
        assert "[immobile]" in text
        assert "write(X)" in text

    def test_semifixity_constraints_shown(self, reorderer):
        text = explain_predicate(reorderer, ("probe", 1), mode("-"))
        assert "blocked by semifixity constraints" in text

    def test_unknown_predicate(self, reorderer):
        assert "not defined" in explain_predicate(
            reorderer, ("ghost", 1), mode("-")
        )

    def test_illegal_mode(self, reorderer):
        source = ":- legal_mode(only_plus(+)). only_plus(1)."
        local = Reorderer(Database.from_source(source))
        text = explain_predicate(local, ("only_plus", 1), mode("-"))
        assert "no legal behaviour" in text

    def test_large_block_capped(self):
        goals = ", ".join(f"g{i}(X)" for i in range(6))
        source = "\n".join(f"g{i}(1)." for i in range(6)) + f"\nbig(X) :- {goals}.\n"
        local = Reorderer(Database.from_source(source))
        text = explain_predicate(local, ("big", 1), mode("-"), max_orders=10)
        assert "720 permutations" in text
        assert text.count(">>") == 1
