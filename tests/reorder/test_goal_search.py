"""Unit tests for goal-order search: exhaustive, A*, and their agreement."""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.modes import bind_head_states, parse_mode_string
from repro.markov.predicate_model import CostModel
from repro.prolog import Database, parse_term
from repro.prolog.database import body_goals
from repro.reorder.goal_search import astar_search, exhaustive_search, find_best_order


SOURCE = """
big(X) :- gen(X).
gen(1). gen(2). gen(3). gen(4). gen(5). gen(6). gen(7). gen(8).
small(a). small(b).
check(1).
link(1, a). link(2, b).
"""


def setup(source=SOURCE):
    database = Database.from_source(source)
    return CostModel(database, Declarations.from_database(database))


def goals_and_states(model, head_text, body_text, mode_text):
    head = parse_term(head_text)
    # Reparse body in the same variable scope via a whole clause.
    clause = parse_term(f"{head_text} :- {body_text}")
    head, body = clause.args
    goals = body_goals(body)
    states = {}
    bind_head_states(head, parse_mode_string(mode_text), states)
    return head, goals, states


class TestExhaustive:
    def test_puts_test_before_generator(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X)", "gen(X), check(X)", "-"
        )
        result = exhaustive_search(goals, states, model, set())
        # check/1 with X unbound is still a generator of 1 solution;
        # gen/1 makes 8: the cheaper order runs check first.
        assert result.order == (1, 0)

    def test_respects_constraints(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X)", "gen(X), check(X)", "-"
        )
        result = exhaustive_search(goals, states, model, {(0, 1)})
        assert result.order == (0, 1)

    def test_no_legal_order_returns_none(self):
        model = setup("f(1).")
        _, goals, states = goals_and_states(model, "g(X)", "X > 0, X < 9", "-")
        assert exhaustive_search(goals, states, model, set()) is None

    def test_skips_illegal_orders(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X, Y)", "gen(X), Y is X + 1", "--"
        )
        result = exhaustive_search(goals, states, model, set())
        assert result.order == (0, 1)  # 'is' cannot run first


class TestAStar:
    def test_matches_exhaustive(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X, Y)", "gen(X), link(X, Y), small(Y)", "--"
        )
        best_exhaustive = exhaustive_search(goals, dict(states), model, set())
        best_astar = astar_search(goals, dict(states), model, set())
        assert best_astar.order == best_exhaustive.order

    def test_respects_constraints(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X)", "gen(X), check(X)", "-"
        )
        result = astar_search(goals, states, model, {(0, 1)})
        assert result.order == (0, 1)

    def test_none_when_no_legal_order(self):
        model = setup("f(1).")
        _, goals, states = goals_and_states(model, "g(X)", "X > 0, X < 9", "-")
        assert astar_search(goals, states, model, set()) is None

    def test_explores_fewer_nodes_than_factorial(self):
        model = setup()
        _, goals, states = goals_and_states(
            model,
            "f(A, B)",
            "gen(A), gen(B), link(A, X1), link(B, X2), small(X1), small(X2)",
            "--",
        )
        result = astar_search(goals, states, model, set())
        assert result is not None
        # 6 goals: 720 complete orders, many more partial expansions;
        # A* should not touch anywhere near all of them... but at least
        # check it reports the count.
        assert result.explored > 0


class TestFindBestOrder:
    def test_single_goal_fixed(self):
        model = setup()
        _, goals, states = goals_and_states(model, "f(X)", "gen(X)", "-")
        result = find_best_order(goals, states, model)
        assert result.strategy == "fixed"
        assert result.order == (0,)

    def test_small_block_exhaustive(self):
        model = setup()
        _, goals, states = goals_and_states(model, "f(X)", "gen(X), check(X)", "-")
        result = find_best_order(goals, states, model)
        assert result.strategy == "exhaustive"

    def test_large_block_astar(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X)", "gen(X), check(X), small(Y), gen(Y)", "-"
        )
        result = find_best_order(goals, states, model, exhaustive_limit=2)
        assert result.strategy == "astar"

    def test_astar_equals_exhaustive_cost(self):
        model = setup()
        _, goals, states = goals_and_states(
            model, "f(X, Y)", "gen(X), link(X, Y), small(Y), check(X)", "--"
        )
        exhaustive = find_best_order(
            goals, dict(states), model, exhaustive_limit=10
        )
        astar = find_best_order(goals, dict(states), model, exhaustive_limit=1)
        assert astar.evaluation.total_cost == pytest.approx(
            exhaustive.evaluation.total_cost
        )

    def test_states_propagated(self):
        from repro.analysis.modes import Inst

        model = setup()
        head, goals, states = goals_and_states(model, "f(X)", "gen(X), check(X)", "-")
        result = find_best_order(goals, states, model)
        x = head.args[0]
        assert result.states[id(x)] is Inst.GROUND
