"""Unit tests for the restriction/block partitioner (Table I)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.declarations import Declarations
from repro.analysis.fixity import FixityAnalysis
from repro.analysis.semifixity import SemifixityAnalysis
from repro.prolog import Database, parse_term
from repro.reorder.restrictions import (
    goal_is_mobile,
    order_constraints,
    partition_body,
)


def analyses(source="p(1). q(1). r(1). s(1)."):
    database = Database.from_source(source)
    declarations = Declarations.from_database(database)
    graph = CallGraph(database)
    return (
        FixityAnalysis(database, graph, declarations),
        SemifixityAnalysis(database, graph, declarations),
    )


class TestGoalMobility:
    def test_plain_goal_mobile(self):
        fixity, _ = analyses()
        assert goal_is_mobile(parse_term("p(X)"), fixity)

    def test_write_immobile(self):
        fixity, _ = analyses()
        assert not goal_is_mobile(parse_term("write(X)"), fixity)

    def test_cut_immobile(self):
        fixity, _ = analyses()
        assert not goal_is_mobile(parse_term("!"), fixity)

    def test_fail_immobile(self):
        fixity, _ = analyses()
        assert not goal_is_mobile(parse_term("fail"), fixity)

    def test_disjunction_mobile_when_pure(self):
        fixity, _ = analyses()
        assert goal_is_mobile(parse_term("(p(X) ; q(X))"), fixity)

    def test_disjunction_with_cut_immobile(self):
        fixity, _ = analyses()
        assert not goal_is_mobile(parse_term("(p(X), ! ; q(X))"), fixity)

    def test_disjunction_with_write_immobile(self):
        fixity, _ = analyses()
        assert not goal_is_mobile(parse_term("(p(X) ; write(X))"), fixity)

    def test_negation_mobile(self):
        fixity, _ = analyses()
        assert goal_is_mobile(parse_term("\\+ p(X)"), fixity)

    def test_cut_in_condition_is_local(self):
        # A cut inside the condition of '->' is local (the condition is
        # an implicit cut barrier), so the construct stays mobile; a cut
        # in the 'then' part cuts the clause and freezes it.
        fixity, _ = analyses()
        assert goal_is_mobile(parse_term("(p(X), ! -> q(X) ; r(X))"), fixity)
        assert not goal_is_mobile(parse_term("(p(X) -> q(X), ! ; r(X))"), fixity)
        assert goal_is_mobile(parse_term("(p(X) -> q(X) ; r(X))"), fixity)


class TestPartition:
    def test_all_mobile(self):
        fixity, _ = analyses()
        partition = partition_body(parse_term("p(X), q(X), r(X)"), fixity)
        assert len(partition.blocks) == 1
        assert partition.blocks[0].mobile
        assert len(partition.blocks[0]) == 3

    def test_write_splits(self):
        fixity, _ = analyses()
        partition = partition_body(
            parse_term("p(X), q(X), write(X), r(X), s(X)"), fixity
        )
        mobilities = [(block.mobile, len(block)) for block in partition.blocks]
        assert mobilities == [(True, 2), (False, 1), (True, 2)]

    def test_cut_freezes_prefix(self):
        fixity, _ = analyses()
        partition = partition_body(parse_term("p(X), q(X), !, r(X), s(X)"), fixity)
        # p,q block immobile and single-solution; cut; r,s mobile.
        first, cut_block, last = partition.blocks
        assert not first.mobile and not first.multi_solution
        assert not cut_block.mobile
        assert last.mobile and last.multi_solution

    def test_goals_after_last_cut_mobile(self):
        fixity, _ = analyses()
        partition = partition_body(parse_term("!, p(X), q(X)"), fixity)
        assert partition.blocks[-1].mobile
        assert len(partition.blocks[-1]) == 2

    def test_two_cuts(self):
        fixity, _ = analyses()
        partition = partition_body(
            parse_term("p(X), !, q(X), !, r(X)"), fixity
        )
        pre_blocks = partition.blocks[:-1]
        assert all(not block.mobile for block in pre_blocks)
        assert partition.blocks[-1].mobile

    def test_failure_driven_loop(self):
        fixity, _ = analyses()
        partition = partition_body(
            parse_term("p(X), q(X), write(X), fail"), fixity
        )
        # p,q reorderable within the loop, the write and fail are barriers.
        assert partition.blocks[0].mobile and len(partition.blocks[0]) == 2
        assert not partition.blocks[1].mobile
        assert not partition.blocks[2].mobile

    def test_all_goals_preserved(self):
        fixity, _ = analyses()
        body = parse_term("p(X), write(X), !, q(X)")
        partition = partition_body(body, fixity)
        assert len(partition.all_goals()) == 4

    def test_mobile_goal_count(self):
        fixity, _ = analyses()
        partition = partition_body(parse_term("p(X), write(Y), q(X)"), fixity)
        assert partition.mobile_goal_count == 2


class TestOrderConstraints:
    def test_no_constraints_for_plain_goals(self):
        _, semifixity = analyses()
        goals = [parse_term("p(X)"), parse_term("q(X)")]
        assert order_constraints(goals, semifixity) == set()

    def test_var_test_constrained_with_sharer(self):
        _, semifixity = analyses()
        body = parse_term("p(X), var(X), q(X)")
        from repro.prolog.database import body_goals

        goals = body_goals(body)
        constraints = order_constraints(goals, semifixity)
        assert (0, 1) in constraints  # p before var
        assert (1, 2) in constraints  # var before q

    def test_unrelated_goals_unconstrained(self):
        _, semifixity = analyses()
        body = parse_term("var(X), q(Y)")
        from repro.prolog.database import body_goals

        constraints = order_constraints(body_goals(body), semifixity)
        assert constraints == set()

    def test_ground_culprit_released(self):
        from repro.analysis.modes import Inst
        from repro.prolog.database import body_goals

        _, semifixity = analyses()
        body = parse_term("p(X), var(X)")
        goals = body_goals(body)
        x = goals[1].args[0]
        constraints = order_constraints(
            goals, semifixity, initial_states={id(x): Inst.GROUND}
        )
        assert constraints == set()

    def test_negation_constrained(self):
        from repro.prolog.database import body_goals

        _, semifixity = analyses()
        goals = body_goals(parse_term("p(X), \\+ q(X)"))
        constraints = order_constraints(goals, semifixity)
        assert (0, 1) in constraints

    def test_findall_constrained_on_free_variable(self):
        from repro.prolog.database import body_goals

        _, semifixity = analyses()
        goals = body_goals(parse_term("p(D), findall(S, q(D, S), L)"))
        constraints = order_constraints(goals, semifixity)
        assert (0, 1) in constraints
