"""Tests for reordering inside control constructs (§IV-D-2/5/6)."""

import pytest

from repro.prolog import Database, Engine
from repro.reorder.system import ReorderOptions, Reorderer


def reorder(source, **options):
    return Reorderer(
        Database.from_source(source), ReorderOptions(**options)
    ).reorder()


def answers(engine, query):
    return sorted(s.key() for s in engine.ask(query))


BASE = """
wide(1). wide(2). wide(3). wide(4). wide(5). wide(6). wide(7). wide(8).
narrow(3).
"""


class TestNegationBody:
    SOURCE = BASE + """
    item(a, 3). item(b, 9).
    clear(X) :- item(X, N), \\+ (wide(M), narrow(M), M =:= N).
    """

    def test_inner_conjunction_reordered(self):
        program = reorder(self.SOURCE, specialize=False)
        (clause,) = program.database.clauses(("clear", 1))
        body_text = str(clause.body)
        inner = body_text[body_text.index("\\+"):]
        assert inner.index("narrow") < inner.index("wide")

    def test_equivalent(self):
        database = Database.from_source(self.SOURCE)
        program = reorder(self.SOURCE, specialize=False)
        assert answers(Engine(database), "clear(X)") == answers(
            program.engine(), "clear(X)"
        )

    def test_cheaper(self):
        database = Database.from_source(self.SOURCE)
        program = reorder(self.SOURCE, specialize=False)
        _, original = Engine(database).run("clear(X)")
        _, new = program.engine().run("clear(X)")
        assert new.calls < original.calls


class TestFindallBody:
    SOURCE = BASE + """
    collect(L) :- findall(M, (wide(M), narrow(M)), L).
    """

    def test_inner_reordered(self):
        program = reorder(self.SOURCE, specialize=False)
        (clause,) = program.database.clauses(("collect", 1))
        body_text = str(clause.body)
        assert body_text.index("narrow") < body_text.index("wide")

    def test_equivalent(self):
        database = Database.from_source(self.SOURCE)
        program = reorder(self.SOURCE, specialize=False)
        assert answers(Engine(database), "collect(L)") == answers(
            program.engine(), "collect(L)"
        )


class TestDisjunctionHalves:
    SOURCE = BASE + """
    pick(X) :- ( wide(X), narrow(X) ; wide(X), X > 7 ).
    """

    def test_halves_reordered_independently(self):
        program = reorder(self.SOURCE, specialize=False)
        (clause,) = program.database.clauses(("pick", 1))
        body_text = str(clause.body)
        left, right = body_text.split(";")
        assert left.index("narrow") < left.index("wide")
        # The right half keeps wide first ('>' demands a bound arg).
        assert right.index("wide") < right.index(">")

    def test_solution_set_preserved(self):
        database = Database.from_source(self.SOURCE)
        program = reorder(self.SOURCE, specialize=False)
        assert answers(Engine(database), "pick(X)") == answers(
            program.engine(), "pick(X)"
        )


class TestIfThenElse:
    SOURCE = BASE + """
    flag(yes).
    route(X) :- ( flag(yes) -> wide(X), narrow(X) ; wide(X), X > 6 ).
    """

    def test_then_half_reordered_premise_kept(self):
        program = reorder(self.SOURCE, specialize=False)
        (clause,) = program.database.clauses(("route", 1))
        body_text = str(clause.body)
        then_half = body_text[body_text.index("->"): body_text.index(";")]
        assert then_half.index("narrow") < then_half.index("wide")
        assert body_text.index("flag") < body_text.index("->")

    def test_equivalent(self):
        database = Database.from_source(self.SOURCE)
        program = reorder(self.SOURCE, specialize=False)
        assert answers(Engine(database), "route(X)") == answers(
            program.engine(), "route(X)"
        )


class TestSetofCaret:
    SOURCE = BASE + """
    link(1, a). link(3, b). link(3, c).
    tags(S) :- setof(T, M ^ (wide(M), narrow(M), link(M, T)), S).
    """

    def test_caret_preserved_and_inner_reordered(self):
        program = reorder(self.SOURCE, specialize=False)
        (clause,) = program.database.clauses(("tags", 1))
        body_text = str(clause.body)
        assert "^" in body_text
        assert body_text.index("narrow") < body_text.index("wide")

    def test_equivalent(self):
        database = Database.from_source(self.SOURCE)
        program = reorder(self.SOURCE, specialize=False)
        assert answers(Engine(database), "tags(S)") == answers(
            program.engine(), "tags(S)"
        )


class TestSafetyInside:
    def test_cut_half_not_reordered_across(self):
        source = BASE + """
        pickone(X) :- ( wide(X), narrow(X), ! ; narrow(X) ).
        """
        database = Database.from_source(source)
        program = reorder(source, specialize=False)
        assert answers(Engine(database), "pickone(X)") == answers(
            program.engine(), "pickone(X)"
        )

    def test_write_inside_half_immobile(self):
        source = BASE + """
        noisy(X) :- ( wide(X), write(X), narrow(X) ; fail ).
        """
        database = Database.from_source(source)
        program = reorder(source, specialize=False)
        original = Engine(database)
        original.count_solutions("noisy(X)")
        new = program.engine()
        new.count_solutions("noisy(X)")
        assert original.output_text() == new.output_text()
