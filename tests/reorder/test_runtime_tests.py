"""Unit tests for the §V-D run-time-test transformation."""

import pytest

from repro.prolog import Database, Engine
from repro.reorder.system import ReorderOptions, Reorderer

SOURCE = """
big(1). big(2). big(3). big(4). big(5). big(6). big(7). big(8).
tiny(2). tiny(4).
pair(X, Y) :- big(X), big(Y), tiny(X), tiny(Y).
"""


def reorder(source=SOURCE, **options):
    return Reorderer(
        Database.from_source(source),
        ReorderOptions(specialize=False, runtime_tests=True, **options),
    ).reorder()


def answers(engine, query):
    return sorted(s.key() for s in engine.ask(query))


class TestGuardShape:
    def test_guarded_clause_emitted(self):
        program = reorder()
        (clause,) = program.database.clauses(("pair", 2))
        text = str(clause.body)
        assert "nonvar(X)" in text and "nonvar(Y)" in text
        assert "->" in text

    def test_report_mentions_guards(self):
        program = reorder()
        assert "run-time nonvar tests" in program.report.summary()

    def test_no_guard_when_orders_agree(self):
        # A clause whose best order is the same in every mode stays bare.
        program = reorder("solo(X) :- only(X). only(1).")
        (clause,) = program.database.clauses(("solo", 1))
        assert "nonvar" not in str(clause.body)

    def test_disabled_by_default(self):
        program = Reorderer(
            Database.from_source(SOURCE), ReorderOptions(specialize=False)
        ).reorder()
        (clause,) = program.database.clauses(("pair", 2))
        assert "nonvar" not in str(clause.body)


class TestGuardSemantics:
    def test_set_equivalent_all_modes(self):
        database = Database.from_source(SOURCE)
        program = reorder()
        for query in ["pair(X, Y)", "pair(2, Y)", "pair(X, 4)", "pair(2, 4)",
                      "pair(1, 1)"]:
            assert answers(Engine(database), query) == answers(
                program.engine(), query
            ), query

    def test_open_mode_cheaper(self):
        database = Database.from_source(SOURCE)
        program = reorder()
        _, original = Engine(database).run("pair(X, Y)")
        _, guarded = program.engine().run("pair(X, Y)")
        assert guarded.calls < original.calls

    def test_instantiated_mode_roughly_source_cost(self):
        database = Database.from_source(SOURCE)
        program = reorder()
        _, original = Engine(database).run("pair(2, 4)")
        _, guarded = program.engine().run("pair(2, 4)")
        # Two nonvar tests plus the optimistic body: a constant overhead.
        assert guarded.calls <= original.calls + 3
