"""Unit/behavioural tests for the whole reordering system (Fig. 3)."""

import pytest

from repro.analysis.modes import parse_mode_string
from repro.prolog import Database, Engine
from repro.reorder.system import ReorderOptions, Reorderer


GRANDMOTHER = """
wife(john, jane). wife(bob, sue). wife(al, meg). wife(tom, pat).
mother(john, joan). mother(ann, joan). mother(bob, meg).
mother(sue, pat). mother(jane, pat). mother(joan, pat).
girl(jan). girl(deb).
female(X) :- girl(X).
female(X) :- wife(_, X).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""


def reorder(source, **options):
    return Reorderer(Database.from_source(source), ReorderOptions(**options)).reorder()


def mode(text):
    return parse_mode_string(text)


def answers(engine, query):
    return sorted(s.key() for s in engine.ask(query))


class TestSectionIDExample:
    """The paper's §I-D motivating example must come out as described."""

    def test_female_moved_first_in_uu(self):
        program = reorder(GRANDMOTHER)
        version = program.version_name(("grandmother", 2), mode("--"))
        clauses = program.database.clauses((version, 2))
        first_goal = str(clauses[0].body).split(",")[0]
        assert "female" in first_goal

    def test_set_equivalent(self):
        program = reorder(GRANDMOTHER)
        original = Engine(Database.from_source(GRANDMOTHER))
        assert answers(original, "grandmother(X, Y)") == answers(
            program.engine(), "grandmother(X, Y)"
        )

    def test_cheaper(self):
        program = reorder(GRANDMOTHER)
        _, original_metrics = Engine(Database.from_source(GRANDMOTHER)).run(
            "grandmother(X, Y)"
        )
        version = program.version_name(("grandmother", 2), mode("--"))
        _, new_metrics = program.engine().run(f"{version}(X, Y)")
        assert new_metrics.calls < original_metrics.calls


class TestVersionsAndDispatchers:
    def test_versions_per_mode(self):
        program = reorder(GRANDMOTHER)
        for mode_text in ("--", "-+", "+-", "++"):
            assert program.version_name(("grandmother", 2), mode(mode_text))

    def test_dispatcher_under_original_name(self):
        program = reorder(GRANDMOTHER)
        assert program.database.defines(("grandmother", 2))
        engine = program.engine()
        assert engine.succeeds("grandmother(X, Y)")

    def test_dedup_merges_identical(self):
        # wife/2 is a fact predicate: all four versions identical, so the
        # original name survives with no dispatcher.
        program = reorder(GRANDMOTHER)
        assert program.version_name(("wife", 2), mode("--")) == "wife"
        clauses = program.database.clauses(("wife", 2))
        assert all(clause.is_fact for clause in clauses)

    def test_report_mentions_reordering(self):
        program = reorder(GRANDMOTHER)
        summary = program.report.summary()
        assert "goals reordered" in summary

    def test_source_reparses_and_runs(self):
        program = reorder(GRANDMOTHER)
        rebuilt = Engine(Database.from_source(program.source()))
        assert answers(rebuilt, "grandmother(X, Y)") == answers(
            program.engine(), "grandmother(X, Y)"
        )


class TestOptions:
    def test_no_specialize_keeps_names(self):
        program = reorder(GRANDMOTHER, specialize=False)
        assert program.database.defines(("grandmother", 2))
        clauses = program.database.clauses(("grandmother", 2))
        # No dispatcher: the clauses are the reordered originals.
        assert len(clauses) == 1
        assert "grandparent" in str(clauses[0].body)

    def test_no_goal_reordering(self):
        program = reorder(GRANDMOTHER, reorder_goals=False, specialize=False)
        clauses = program.database.clauses(("grandmother", 2))
        body_text = str(clauses[0].body)
        assert body_text.index("grandparent") < body_text.index("female")

    def test_no_clause_reordering(self):
        source = "f(X) :- slow(X). f(X) :- quick(X). slow(1). quick(2)."
        with_reorder = reorder(source, specialize=False)
        without = reorder(source, specialize=False, reorder_clauses=False)
        original_heads = [
            str(c.body) for c in Database.from_source(source).clauses(("f", 1))
        ]
        kept = [str(c.body) for c in without.database.clauses(("f", 1))]
        assert kept == original_heads

    def test_max_versions_cap(self):
        # Arity 3 => 8 modes > cap of 2 => reordered in place.
        source = "t(A, B, C) :- p(A), p(B), p(C). p(1)."
        program = reorder(source, max_versions=2)
        assert program.database.defines(("t", 3))
        assert len(program.database.clauses(("t", 3))) == 1


class TestSafety:
    def test_side_effect_order_preserved(self):
        source = """
        g(1). g(2).
        loud(X) :- g(X), write(X), g(Y), Y > X.
        """
        program = reorder(source)
        original = Engine(Database.from_source(source))
        new = program.engine()
        original.count_solutions("loud(X)")
        new.count_solutions("loud(X)")
        assert original.output_text() == new.output_text()

    def test_cut_semantics_preserved(self):
        source = """
        g(1). g(2). h(2).
        first(X) :- g(X), h(X), !.
        first(0).
        """
        program = reorder(source)
        original = Engine(Database.from_source(source))
        assert answers(original, "first(X)") == answers(
            program.engine(), "first(X)"
        )

    def test_failure_driven_loop_output(self):
        source = """
        t(1). t(2). t(3).
        show :- t(X), write(X), nl, fail.
        show.
        """
        program = reorder(source)
        original = Engine(Database.from_source(source))
        original.succeeds("show")
        new = program.engine()
        new.succeeds("show")
        assert original.output_text() == new.output_text()

    def test_var_test_not_crossed(self):
        source = """
        g(1).
        probe(X, R) :- var(X), g(X), R = was_var.
        """
        program = reorder(source)
        original = Engine(Database.from_source(source))
        assert answers(original, "probe(X, R)") == answers(
            program.engine(), "probe(X, R)"
        )
        assert not program.engine().succeeds("probe(1, R)")

    def test_negation_results_preserved(self):
        source = """
        p(1). p(2). q(2).
        lone(X) :- p(X), \\+ q(X).
        """
        program = reorder(source)
        original = Engine(Database.from_source(source))
        assert answers(original, "lone(X)") == answers(program.engine(), "lone(X)")

    def test_warnings_propagated(self):
        source = """
        walk(X, Y) :- step(X, Y).
        walk(X, Z) :- step(X, Y), walk(Y, Z).
        step(a, b). step(b, c).
        """
        program = reorder(source)
        assert any("walk" in w for w in program.report.warnings)
