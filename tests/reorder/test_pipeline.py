"""Tests for the staged pipeline's incremental AnalysisContext.

These pin the invalidation contract: a warm re-reorder over an
unchanged database is a pure cache replay; an edit recomputes exactly
the edited predicate's SCC plus its transitive callers; and either way
the output is byte-identical to a cold run.
"""

import json

from repro.observability.events import CacheEvent, EventBus
from repro.programs import REGISTRY
from repro.prolog import Database
from repro.reorder import (
    AnalysisContext,
    Reorderer,
    ReorderOptions,
    ReorderPipeline,
)
from repro.reorder.pipeline.context import ANALYSIS_STAGES, BUILD_STAGE

SMALL = """
p(X) :- q(X), r(X).
q(1). q(2).
r(2).
s(X) :- q(X).
"""


def fingerprint(program):
    """Byte-comparable rendering of a reorder result."""
    return (
        json.dumps(program.report.to_dict(), sort_keys=True),
        program.source(),
    )


def reorder_with(database, context, **options):
    return Reorderer(
        database, ReorderOptions(**options), context=context
    ).reorder()


class TestWarmReplay:
    def test_unchanged_database_is_all_hits(self):
        database = Database.from_source(SMALL)
        context = AnalysisContext(database)
        cold = reorder_with(database, context)
        context.reset_counters()
        warm = reorder_with(database, context)
        assert not context.misses
        for stage in ANALYSIS_STAGES:
            assert context.hits[stage] == 1
        assert context.hits[BUILD_STAGE] == len(database.predicates())
        assert context.last_dirty == frozenset()
        assert context.last_affected == frozenset()
        assert fingerprint(warm) == fingerprint(cold)

    def test_warm_matches_cold_on_paper_programs(self):
        for name in ("family_tree", "meal"):
            database = Database.from_source(REGISTRY[name].source())
            context = AnalysisContext(database)
            cold = reorder_with(database, context)
            warm = reorder_with(database, context)
            assert fingerprint(warm) == fingerprint(cold), name


class TestIncrementalInvalidation:
    def edit(self, database, indicator):
        """A no-op edit: replace a predicate with its own clauses,
        which still bumps the predicate's generation mark."""
        database.replace_predicate(indicator, database.clauses(indicator))

    def test_edit_recomputes_only_scc_and_callers(self):
        database = Database.from_source(SMALL)
        context = AnalysisContext(database)
        reorder_with(database, context)
        self.edit(database, ("r", 1))
        context.reset_counters()
        incremental = reorder_with(database, context)
        # r/1 was edited; p/1 calls it; q/2 and s/1 are untouched.
        assert context.last_dirty == frozenset({("r", 1)})
        assert context.last_affected == frozenset({("r", 1), ("p", 1)})
        assert context.misses[BUILD_STAGE] == 2
        assert context.hits[BUILD_STAGE] == 2
        # The incremental result equals a cold run over an equal program.
        cold = Reorderer(Database.from_source(SMALL)).reorder()
        assert fingerprint(incremental) == fingerprint(cold)

    def test_edit_matches_cold_on_family_tree(self):
        source = REGISTRY["family_tree"].source()
        database = Database.from_source(source)
        context = AnalysisContext(database)
        reorder_with(database, context)
        self.edit(database, ("wife", 2))
        context.reset_counters()
        incremental = reorder_with(database, context)
        assert context.last_dirty == frozenset({("wife", 2)})
        assert ("wife", 2) in context.last_affected
        # Some predicates stayed cached: the closure is a strict subset.
        defined_affected = [
            indicator
            for indicator in context.last_affected
            if database.defines(indicator)
        ]
        assert context.misses[BUILD_STAGE] == len(defined_affected)
        assert context.hits[BUILD_STAGE] == len(database.predicates()) - len(
            defined_affected
        )
        assert context.hits[BUILD_STAGE] > 0
        cold = Reorderer(Database.from_source(source)).reorder()
        assert fingerprint(incremental) == fingerprint(cold)

    def test_options_change_invalidates_builds_not_analyses(self):
        database = Database.from_source(SMALL)
        context = AnalysisContext(database)
        reorder_with(database, context)
        context.reset_counters()
        reorder_with(database, context, runtime_tests=True)
        # Same program: analyses replay; different knobs: builds rerun.
        for stage in ANALYSIS_STAGES:
            assert context.hits[stage] == 1
        assert context.misses[BUILD_STAGE] == len(database.predicates())
        assert BUILD_STAGE not in context.hits


class TestObservability:
    def test_cache_events_emitted(self):
        database = Database.from_source(SMALL)
        bus = EventBus()
        context = AnalysisContext(database, events=bus)
        reorder_with(database, context)
        reorder_with(database, context)
        cache_events = bus.by_kind("cache")
        assert cache_events
        assert all(isinstance(event, CacheEvent) for event in cache_events)
        stages = {event.stage for event in cache_events}
        assert BUILD_STAGE in stages and "fixity" in stages
        assert {event.hit for event in cache_events} == {True, False}
        # Build consultations carry the predicate; analysis ones do not.
        build_event = next(e for e in cache_events if e.stage == BUILD_STAGE)
        assert build_event.indicator in set(database.predicates())
        record = build_event.to_record()
        assert record["kind"] == "cache" and "predicate" in record

    def test_counters_record_shape(self):
        database = Database.from_source(SMALL)
        context = AnalysisContext(database)
        reorder_with(database, context)
        record = context.counters_record()
        assert record["type"] == "cache"
        assert record["misses"][BUILD_STAGE] == len(database.predicates())
        assert record["dirty"] == sorted(["p/1", "q/1", "r/1", "s/1"])
        assert record["affected"] == record["dirty"]


class TestFacadeSafety:
    def test_swapped_analysis_disables_caching(self):
        # The ablation benchmarks overwrite analysis attributes on the
        # facade before calling reorder(); the cache must silently stand
        # aside rather than replay results for the wrong model.
        database = Database.from_source(SMALL)
        context = AnalysisContext(database)
        reorder_with(database, context)
        context.reset_counters()
        reorderer = Reorderer(database, context=context)
        fresh = AnalysisContext(database).refresh(ReorderOptions())
        reorderer.model = fresh.model
        reorderer.reorder()
        assert BUILD_STAGE not in context.hits
        assert BUILD_STAGE not in context.misses

    def test_context_requires_matching_database(self):
        first = Database.from_source(SMALL)
        second = Database.from_source(SMALL)
        context = AnalysisContext(first)
        try:
            Reorderer(second, context=context)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError for foreign context")


class TestPhaseDeclarations:
    def test_phases_declare_names_inputs_outputs(self):
        pipeline = ReorderPipeline(None)
        names = [phase.name for phase in pipeline.phases]
        assert len(names) == len(set(names)) == 10
        for phase in pipeline.phases:
            assert isinstance(phase.name, str) and phase.name
            assert isinstance(phase.inputs, tuple)
            assert isinstance(phase.outputs, tuple)
            assert all(isinstance(item, str) for item in phase.inputs)
            assert all(isinstance(item, str) for item in phase.outputs)
