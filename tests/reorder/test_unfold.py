"""Unit tests for the unfold transformation (§VIII)."""

import pytest

from repro.prolog import Database, Engine, parse_term
from repro.prolog.database import body_goals
from repro.reorder.unfold import (
    UnfoldOptions,
    unfold_clause_goal,
    unfold_program,
)
from repro.reorder.system import ReorderOptions, Reorderer


GRAPH = """
edge(a, b). edge(b, c). edge(c, d).
hop(X, Y) :- edge(X, Y).
hop(X, Y) :- edge(X, Z), edge(Z, Y).
path3(X, Y) :- hop(X, M), hop(M, Y).
"""


def answers(database, query):
    return sorted(s.key() for s in Engine(database).ask(query))


class TestUnfoldClauseGoal:
    def test_single_clause_inline(self):
        database = Database.from_source("inner(X) :- base(X). base(1). outer(Y) :- inner(Y).")
        clause = database.clauses(("outer", 1))[0]
        (resolvent,) = unfold_clause_goal(clause, 0, database)
        goals = body_goals(resolvent.body)
        assert len(goals) == 1
        assert goals[0].indicator == ("base", 1)
        # The head variable and the inlined goal's variable stay linked.
        assert resolvent.head.args[0] is goals[0].args[0]

    def test_multi_clause_fanout(self):
        database = Database.from_source(GRAPH)
        clause = database.clauses(("path3", 2))[0]
        resolvents = unfold_clause_goal(clause, 0, database)
        assert len(resolvents) == 2  # hop/2 has two clauses

    def test_bindings_applied(self):
        database = Database.from_source("k(a, 1). caller(V) :- k(a, V).")
        clause = database.clauses(("caller", 1))[0]
        (resolvent,) = unfold_clause_goal(clause, 0, database)
        # k(a, V) resolved against k(a, 1): V = 1 applied everywhere.
        assert str(resolvent.head) == "caller(1)"

    def test_non_matching_heads_dropped(self):
        database = Database.from_source("k(b). caller :- k(a).")
        clause = database.clauses(("caller", 0))[0]
        assert unfold_clause_goal(clause, 0, database) == []

    def test_true_body_removed(self):
        database = Database.from_source("f(1). g(X) :- f(X), f(X).")
        clause = database.clauses(("g", 1))[0]
        (resolvent,) = unfold_clause_goal(clause, 0, database)
        goals = body_goals(resolvent.body)
        assert [str(g) for g in goals] == ["f(1)"]  # one fact inlined away

    def test_undefined_goal_none(self):
        database = Database.from_source("caller :- ghost(1).")
        clause = database.clauses(("caller", 0))[0]
        assert unfold_clause_goal(clause, 0, database) is None


class TestUnfoldProgram:
    def test_equivalence(self):
        database = Database.from_source(GRAPH)
        unfolded, report = unfold_program(database, UnfoldOptions(rounds=2))
        assert answers(database, "path3(X, Y)") == answers(unfolded, "path3(X, Y)")
        assert report.unfolded

    def test_recursive_callee_skipped(self):
        source = """
        nat(z). nat(s(X)) :- nat(X).
        two(N) :- nat(N).
        """
        database = Database.from_source(source)
        unfolded, report = unfold_program(database)
        assert not report.unfolded
        assert str(unfolded.clauses(("two", 1))[0].body) == "nat(N)"

    def test_cut_callee_skipped(self):
        source = "pick(X) :- gen(X), !. gen(1). gen(2). use(X) :- pick(X)."
        database = Database.from_source(source)
        unfolded, report = unfold_program(database)
        assert all("pick" not in line for line in report.unfolded)

    def test_multi_resolvent_blocked_in_side_effect_clause(self):
        # Unfolding choice/1 (2 clauses) after the write would duplicate
        # the side effect on backtracking.
        source = """
        choice(1). choice(2).
        noisy :- write(x), choice(Y), Y > 1.
        """
        database = Database.from_source(source)
        unfolded, report = unfold_program(database)
        assert report.unfolded == []
        original = Engine(database)
        original.count_solutions("noisy")
        new = Engine(unfolded)
        new.count_solutions("noisy")
        assert original.output_text() == new.output_text()

    def test_single_resolvent_allowed_in_cut_clause(self):
        source = """
        wrap(X) :- base(X).
        base(1).
        pickone(X) :- wrap(X), !.
        """
        database = Database.from_source(source)
        unfolded, report = unfold_program(database, UnfoldOptions(rounds=3))
        assert answers(database, "pickone(X)") == answers(unfolded, "pickone(X)")

    def test_growth_bounded(self):
        source = (
            "c(1). c(2). c(3). c(4). c(5).\n"
            "w(X) :- c(X).\n"
            "big(X, Y) :- w(X), w(Y).\n"
        )
        database = Database.from_source(source)
        unfolded, _ = unfold_program(
            database, UnfoldOptions(rounds=5, max_resolvents=2)
        )
        # w/1 has one clause (inlined), c fan-out of 5 exceeds the bound.
        assert len(unfolded.clauses(("big", 2))) <= 4

    def test_directives_preserved(self):
        database = Database.from_source(":- entry(path3/2).\n" + GRAPH)
        unfolded, _ = unfold_program(database)
        assert len(unfolded.directives) == 1


class TestReordererIntegration:
    def test_unfold_then_reorder_equivalent(self):
        database = Database.from_source(GRAPH)
        program = Reorderer(
            Database.from_source(GRAPH), ReorderOptions(unfold_rounds=2)
        ).reorder()
        assert answers(database, "path3(X, Y)") == sorted(
            s.key() for s in program.engine().ask("path3(X, Y)")
        )
        assert program.report is not None

    def test_unfold_report_attached(self):
        reorderer = Reorderer(
            Database.from_source(GRAPH), ReorderOptions(unfold_rounds=1)
        )
        assert reorderer.unfold_report is not None
        assert reorderer.unfold_report.unfolded
