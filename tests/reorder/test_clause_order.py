"""Unit tests for clause reordering (§III-A, §IV-D-1)."""

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.declarations import Declarations
from repro.analysis.fixity import FixityAnalysis
from repro.markov.goal_stats import GoalStats
from repro.prolog import Database, parse_term
from repro.prolog.database import Clause, split_clause
from repro.reorder.clause_order import (
    ClauseRanking,
    heads_mutually_exclusive,
    order_clauses,
)


def clause_of(text):
    head, body = split_clause(parse_term(text))
    return Clause(head, body)


def ranking(text, p, c):
    return ClauseRanking(
        clause=clause_of(text),
        stats=GoalStats(cost=c, solutions=p, prob=p),
        p=p,
        c=c,
    )


def fixity_for(source="p(1). q(1)."):
    database = Database.from_source(source)
    return FixityAnalysis(
        database, CallGraph(database), Declarations.from_database(database)
    )


class TestMutualExclusion:
    def test_distinct_constants(self):
        a = clause_of("f(a)")
        b = clause_of("f(b)")
        assert heads_mutually_exclusive(a, b)

    def test_nil_vs_cons(self):
        a = clause_of("len([], 0)")
        b = clause_of("len([_ | T], N) :- len(T, M)")
        assert heads_mutually_exclusive(a, b)

    def test_variable_head_not_exclusive(self):
        a = clause_of("f(X)")
        b = clause_of("f(b)")
        assert not heads_mutually_exclusive(a, b)

    def test_same_constant_not_exclusive(self):
        assert not heads_mutually_exclusive(clause_of("f(a)"), clause_of("f(a)"))


class TestOrderClauses:
    def test_sorts_by_ratio(self):
        rankings = [
            ranking("f(a) :- p(1)", p=0.2, c=10.0),   # ratio .02
            ranking("f(b) :- p(2)", p=0.9, c=1.0),    # ratio .9
            ranking("f(c) :- p(3)", p=0.5, c=2.0),    # ratio .25
        ]
        ordered = order_clauses(rankings, fixity_for())
        heads = [str(r.clause.head) for r in ordered]
        assert heads == ["f(b)", "f(c)", "f(a)"]

    def test_stable_on_equal_ratio(self):
        rankings = [
            ranking("f(a)", p=0.5, c=1.0),
            ranking("f(b)", p=0.5, c=1.0),
        ]
        ordered = order_clauses(rankings, fixity_for())
        assert [str(r.clause.head) for r in ordered] == ["f(a)", "f(b)"]

    def test_fixed_clause_anchored(self):
        fixity = fixity_for("p(1).")
        rankings = [
            ranking("f(a) :- p(1)", p=0.1, c=10.0),
            ranking("f(b) :- write(x)", p=0.9, c=1.0),   # fixed: stays 2nd
            ranking("f(c) :- p(3)", p=0.9, c=1.0),
        ]
        ordered = order_clauses(rankings, fixity)
        heads = [str(r.clause.head) for r in ordered]
        assert heads[1] == "f(b)"
        assert heads == ["f(c)", "f(b)", "f(a)"]

    def test_cut_clause_anchored_when_overlapping(self):
        rankings = [
            ranking("f(X) :- p(1), !", p=0.1, c=10.0),  # overlaps other heads
            ranking("f(b) :- p(2)", p=0.9, c=1.0),
        ]
        ordered = order_clauses(rankings, fixity_for())
        assert str(ordered[0].clause.head) == "f(X)"

    def test_cut_clause_mobile_when_exclusive(self):
        # "If several clauses in a predicate are mutually exclusive ...
        # they may be swapped even if some of them have cuts."
        rankings = [
            ranking("f(a) :- p(1), !", p=0.1, c=10.0),
            ranking("f(b) :- p(2)", p=0.9, c=1.0),
        ]
        ordered = order_clauses(rankings, fixity_for())
        assert str(ordered[0].clause.head) == "f(b)"

    def test_all_clauses_preserved(self):
        rankings = [ranking(f"f({i})", p=0.5, c=float(i + 1)) for i in range(5)]
        ordered = order_clauses(rankings, fixity_for())
        assert sorted(str(r.clause.head) for r in ordered) == sorted(
            str(r.clause.head) for r in rankings
        )

    def test_infinite_ratio_first(self):
        rankings = [
            ranking("f(a)", p=0.5, c=1.0),
            ClauseRanking(
                clause=clause_of("f(b)"),
                stats=GoalStats(cost=0.0, solutions=1.0, prob=1.0),
                p=1.0,
                c=0.0,
            ),
        ]
        ordered = order_clauses(rankings, fixity_for())
        assert str(ordered[0].clause.head) == "f(b)"
