"""Unit tests for the legal-mode system and the instantiation lattice."""

import pytest

from repro.analysis.modes import (
    Inst,
    ModeItem,
    ModePair,
    all_input_modes,
    apply_output,
    argument_inst,
    bind_head_states,
    call_mode,
    inst_to_item,
    item_accepts,
    item_to_inst,
    join_inst,
    mode_accepts,
    mode_from_term,
    mode_str,
    mode_to_term,
    parse_mode_string,
)
from repro.errors import DeclarationError
from repro.prolog import parse_term
from repro.prolog.terms import Var

PLUS, MINUS, ANY = ModeItem.PLUS, ModeItem.MINUS, ModeItem.ANY


class TestModeItems:
    def test_from_symbol(self):
        assert ModeItem.from_symbol("+") is PLUS
        assert ModeItem.from_symbol("-") is MINUS
        assert ModeItem.from_symbol("?") is ANY

    def test_unknown_symbol(self):
        with pytest.raises(DeclarationError):
            ModeItem.from_symbol("*")

    def test_str(self):
        assert str(PLUS) == "+"


class TestModeParsing:
    def test_parse_symbols(self):
        assert parse_mode_string("(+, -)") == (PLUS, MINUS)
        assert parse_mode_string("+-?") == (PLUS, MINUS, ANY)

    def test_parse_paper_letters(self):
        assert parse_mode_string("ui") == (MINUS, PLUS)
        assert parse_mode_string("iu") == (PLUS, MINUS)

    def test_parse_empty(self):
        assert parse_mode_string("()") == ()

    def test_parse_bad(self):
        with pytest.raises(DeclarationError):
            parse_mode_string("+x")

    def test_mode_str(self):
        assert mode_str((PLUS, MINUS)) == "(+, -)"

    def test_mode_from_term(self):
        assert mode_from_term(parse_term("f(+, -, ?)")) == (PLUS, MINUS, ANY)

    def test_mode_from_list_term(self):
        assert mode_from_term(parse_term("[+, -]")) == (PLUS, MINUS)

    def test_mode_to_term_roundtrip(self):
        term = mode_to_term("f", (PLUS, ANY))
        assert mode_from_term(term) == (PLUS, ANY)

    def test_mode_to_term_zero_arity(self):
        assert mode_to_term("f", ()).name == "f"


class TestModePair:
    def test_valid(self):
        pair = ModePair((PLUS, MINUS), (PLUS, PLUS))
        assert pair.arity == 2

    def test_output_must_keep_plus(self):
        with pytest.raises(DeclarationError):
            ModePair((PLUS,), (MINUS,))

    def test_arity_mismatch(self):
        with pytest.raises(DeclarationError):
            ModePair((PLUS,), (PLUS, PLUS))

    def test_str(self):
        assert str(ModePair((PLUS,), (PLUS,))) == "(+) -> (+)"


class TestAcceptance:
    def test_any_accepts_everything(self):
        for item in ModeItem:
            assert item_accepts(ANY, item)

    def test_plus_demands_plus(self):
        assert item_accepts(PLUS, PLUS)
        assert not item_accepts(PLUS, MINUS)
        assert not item_accepts(PLUS, ANY)  # conservative (paper §V-D)

    def test_minus_demands_minus(self):
        assert item_accepts(MINUS, MINUS)
        assert not item_accepts(MINUS, PLUS)
        assert not item_accepts(MINUS, ANY)

    def test_mode_accepts(self):
        assert mode_accepts((PLUS, ANY), (PLUS, MINUS))
        assert not mode_accepts((PLUS, ANY), (MINUS, MINUS))
        assert not mode_accepts((PLUS,), (PLUS, PLUS))  # arity


class TestLattice:
    def test_join(self):
        assert join_inst(Inst.FREE, Inst.FREE) is Inst.FREE
        assert join_inst(Inst.GROUND, Inst.GROUND) is Inst.GROUND
        assert join_inst(Inst.FREE, Inst.GROUND) is Inst.ANY
        assert join_inst(Inst.ANY, Inst.GROUND) is Inst.ANY

    def test_item_inst_roundtrip(self):
        for item in ModeItem:
            assert inst_to_item(item_to_inst(item)) is item


class TestAllInputModes:
    def test_counts(self):
        assert len(list(all_input_modes(0))) == 1
        assert len(list(all_input_modes(2))) == 4
        assert len(list(all_input_modes(3))) == 8

    def test_no_any_items(self):
        for mode in all_input_modes(2):
            assert ANY not in mode


class TestArgumentInst:
    def test_constant_ground(self):
        assert argument_inst(parse_term("foo"), {}) is Inst.GROUND
        assert argument_inst(42, {}) is Inst.GROUND

    def test_free_var(self):
        v = Var()
        assert argument_inst(v, {}) is Inst.FREE

    def test_ground_var(self):
        v = Var()
        assert argument_inst(v, {id(v): Inst.GROUND}) is Inst.GROUND

    def test_struct_all_ground(self):
        term = parse_term("f(X, a)")
        x = term.args[0]
        assert argument_inst(term, {id(x): Inst.GROUND}) is Inst.GROUND

    def test_struct_partial(self):
        term = parse_term("f(X, a)")
        assert argument_inst(term, {}) is Inst.ANY

    def test_ground_struct(self):
        assert argument_inst(parse_term("f(a, 1)"), {}) is Inst.GROUND


class TestCallMode:
    def test_mixed(self):
        goal = parse_term("p(X, a, f(Y))")
        x = goal.args[0]
        states = {id(x): Inst.GROUND}
        assert call_mode(goal, states) == (PLUS, PLUS, ANY)

    def test_atom_goal(self):
        assert call_mode(parse_term("p"), {}) == ()


class TestApplyOutput:
    def test_plus_grounds(self):
        goal = parse_term("p(X)")
        states = {}
        apply_output(goal, (PLUS,), states)
        assert states[id(goal.args[0])] is Inst.GROUND

    def test_any_raises_free_to_any(self):
        goal = parse_term("p(X)")
        states = {}
        apply_output(goal, (ANY,), states)
        assert states[id(goal.args[0])] is Inst.ANY

    def test_any_keeps_ground(self):
        goal = parse_term("p(X)")
        x = goal.args[0]
        states = {id(x): Inst.GROUND}
        apply_output(goal, (ANY,), states)
        assert states[id(x)] is Inst.GROUND

    def test_minus_leaves_free(self):
        goal = parse_term("p(X)")
        states = {}
        apply_output(goal, (MINUS,), states)
        assert states.get(id(goal.args[0]), Inst.FREE) is Inst.FREE

    def test_arity_mismatch(self):
        with pytest.raises(DeclarationError):
            apply_output(parse_term("p(X)"), (PLUS, PLUS), {})


class TestBindHeadStates:
    def test_plus_grounds_head_vars(self):
        head = parse_term("p(X, f(Y), Z)")
        states = {}
        bind_head_states(head, parse_mode_string("++-"), states)
        x = head.args[0]
        y = head.args[1].args[0]
        z = head.args[2]
        assert states[id(x)] is Inst.GROUND
        assert states[id(y)] is Inst.GROUND
        assert states.get(id(z), Inst.FREE) is Inst.FREE

    def test_shared_var_takes_strongest(self):
        head = parse_term("p(X, X)")
        states = {}
        bind_head_states(head, parse_mode_string("+-"), states)
        assert states[id(head.args[0])] is Inst.GROUND

    def test_any_marks_any(self):
        head = parse_term("p(X)")
        states = {}
        bind_head_states(head, (ANY,), states)
        assert states[id(head.args[0])] is Inst.ANY

    def test_atom_head(self):
        bind_head_states(parse_term("p"), (), {})  # no crash
