"""Unit tests for the builtin mode/cost table."""

from repro.analysis.builtin_modes import BUILTIN_TABLE, builtin_profile
from repro.analysis.modes import parse_mode_string
from repro.prolog.builtins import BUILTINS, CONTROL_INDICATORS


def mode(text):
    return parse_mode_string(text)


class TestCoverage:
    def test_every_registered_builtin_has_a_profile(self):
        # Every builtin the engine can run must have legal-mode info,
        # or the reorderer cannot reason about programs that use it.
        missing = [
            indicator
            for indicator in BUILTINS
            if indicator not in BUILTIN_TABLE
            and indicator not in CONTROL_INDICATORS
        ]
        assert missing == []

    def test_profiles_have_entries(self):
        for indicator, profile in BUILTIN_TABLE.items():
            assert profile.entries, indicator
            for entry in profile.entries:
                assert entry.pair.arity == indicator[1], indicator


class TestDemands:
    def test_functor_demands(self):
        profile = builtin_profile(("functor", 3))
        assert profile.accepting(mode("+--")) is not None
        assert profile.accepting(mode("-++")) is not None
        assert profile.accepting(mode("---")) is None
        assert profile.accepting(mode("--+")) is None  # arity only: error

    def test_is_demands_rhs(self):
        profile = builtin_profile(("is", 2))
        assert profile.accepting(mode("-+")) is not None
        assert profile.accepting(mode("--")) is None

    def test_length_open_open_illegal(self):
        profile = builtin_profile(("length", 2))
        assert profile.accepting(mode("--")) is None
        assert profile.accepting(mode("+-")) is not None
        assert profile.accepting(mode("-+")) is not None

    def test_comparisons_demand_both(self):
        for name in ("<", ">", "=<", ">=", "=:=", "=\\="):
            profile = builtin_profile((name, 2))
            assert profile.accepting(mode("++")) is not None
            assert profile.accepting(mode("+-")) is None, name

    def test_unification_always_legal(self):
        profile = builtin_profile(("=", 2))
        for text in ("--", "-+", "+-", "++"):
            assert profile.accepting(mode(text)) is not None

    def test_type_tests_always_legal(self):
        for name in ("var", "nonvar", "atom", "ground"):
            profile = builtin_profile((name, 1))
            assert profile.accepting(mode("+")) is not None
            assert profile.accepting(mode("-")) is not None


class TestStatistics:
    def test_first_accepting_entry_wins(self):
        profile = builtin_profile(("=", 2))
        entry = profile.accepting(mode("-+"))
        assert entry.prob == 1.0  # the deterministic binding mode

    def test_deterministic_modes_prob_one(self):
        assert builtin_profile(("is", 2)).accepting(mode("-+")).prob == 1.0

    def test_between_generator_solutions(self):
        entry = builtin_profile(("between", 3)).accepting(mode("++-"))
        assert entry.expected_solutions > 1.0

    def test_default_solutions_equal_prob(self):
        entry = builtin_profile(("<", 2)).accepting(mode("++"))
        assert entry.expected_solutions == entry.prob

    def test_call_n_profiles(self):
        for extra in range(1, 6):
            profile = builtin_profile(("call", 1 + extra))
            assert profile is not None
