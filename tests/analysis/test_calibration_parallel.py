"""Tests for batched/parallel calibration (``measure_pairs``) and the
failure-surfacing channels added with the pipeline refactor."""

from repro.analysis.calibration import CalibrationOptions, EmpiricalCalibrator
from repro.analysis.declarations import Declarations
from repro.analysis.modes import all_input_modes, parse_mode_string
from repro.prolog import Database
from repro.reorder import AnalysisContext
from repro.reorder.pipeline.context import CALIBRATION_STAGE


def mode(text):
    return parse_mode_string(text)


FACTS = """
p(a). p(b). p(c). p(d).
q(a, 1). q(b, 2). q(c, 3).
join(X, N) :- p(X), q(X, N).
"""

DIVERGING = """
loop(X) :- loop(X).
ok(a). ok(b).
"""


def all_pairs(database):
    return [
        (indicator, m)
        for indicator in database.predicates()
        for m in all_input_modes(indicator[1])
    ]


class TestMeasurePairs:
    def test_serial_equals_parallel(self):
        database = Database.from_source(FACTS)
        pairs = all_pairs(database)
        serial = EmpiricalCalibrator(database)
        parallel = EmpiricalCalibrator(Database.from_source(FACTS))
        assert serial.measure_pairs(pairs) == parallel.measure_pairs(
            pairs, jobs=2
        )
        assert serial.failures == parallel.failures

    def test_parallel_failures_in_task_order(self):
        database = Database.from_source(DIVERGING)
        options = CalibrationOptions(call_budget=200, max_depth=50)
        pairs = all_pairs(database)
        serial = EmpiricalCalibrator(database, options)
        serial.measure_pairs(pairs)
        parallel = EmpiricalCalibrator(
            Database.from_source(DIVERGING), options
        )
        parallel.measure_pairs(pairs, jobs=2)
        assert serial.failures == parallel.failures
        assert (("loop", 1), mode("-")) in parallel.failures

    def test_single_pair_stays_serial(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        results = calibrator.measure_pairs([(("p", 1), mode("-"))], jobs=8)
        assert results[0].solutions == 4.0


def aggregate_signature(aggregates):
    """Everything deterministic about aggregates: wall-time histograms
    vary run to run, the call/box/cost accounting must not."""
    return (
        dict(aggregates.total_calls),
        {
            key: (
                aggregate.boxes,
                aggregate.successes,
                aggregate.solutions,
                aggregate.cost.buckets,
                aggregate.cost.total,
            )
            for key, aggregate in aggregates.items()
        },
    )


class TestCollectAggregates:
    def test_sample_runs_feed_the_aggregates(self):
        calibrator = EmpiricalCalibrator(
            Database.from_source(FACTS),
            CalibrationOptions(collect_aggregates=True),
        )
        calibrator.measure_pairs(all_pairs(calibrator.database))
        assert calibrator.aggregates.total_calls
        assert calibrator.aggregates.sampled_boxes() > 0

    def test_disabled_by_default(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        calibrator.measure_pairs(all_pairs(calibrator.database))
        assert not calibrator.aggregates.total_calls

    def test_serial_and_parallel_merge_identically(self):
        options = CalibrationOptions(collect_aggregates=True)
        pairs = all_pairs(Database.from_source(FACTS))
        serial = EmpiricalCalibrator(Database.from_source(FACTS), options)
        serial.measure_pairs(pairs)
        parallel = EmpiricalCalibrator(Database.from_source(FACTS), options)
        parallel.measure_pairs(pairs, jobs=2)
        # Workers ship partial aggregates back as payloads merged in
        # task order: the fold must equal the serial accounting.
        assert aggregate_signature(serial.aggregates) == aggregate_signature(
            parallel.aggregates
        )


class TestFailureSurfacing:
    def test_failure_warnings_lines(self):
        database = Database.from_source(DIVERGING)
        calibrator = EmpiricalCalibrator(
            database, CalibrationOptions(call_budget=200, max_depth=50)
        )
        calibrator.measure(("loop", 1), mode("-"))
        lines = calibrator.failure_warnings()
        assert len(lines) == 1
        assert "calibration failed for loop/1 mode (-)" in lines[0]

    def test_calibrate_appends_database_warnings(self):
        database = Database.from_source(DIVERGING)
        calibrator = EmpiricalCalibrator(
            database, CalibrationOptions(call_budget=200, max_depth=50)
        )
        before = len(database.warnings)
        calibrator.calibrate()
        new = database.warnings[before:]
        assert new == calibrator.failure_warnings()
        assert any("loop/1" in warning for warning in new)
        # Each call surfaces only its own failures: a second calibrate()
        # re-measures the (never-installed) failing pairs and appends
        # exactly that run's lines, not the accumulated history.
        calibrator.calibrate()
        assert len(database.warnings) == 2 * len(new)


class TestContextCalibration:
    def test_measurements_cached_across_calls(self):
        database = Database.from_source(FACTS)
        context = AnalysisContext(database).refresh()
        first = context.calibrate()
        misses = context.misses.get(CALIBRATION_STAGE, 0)
        assert misses > 0
        context.reset_counters()
        second = context.calibrate(declarations=Declarations())
        assert context.misses.get(CALIBRATION_STAGE, 0) == 0
        assert context.hits[CALIBRATION_STAGE] == misses
        assert {
            pair: (c.cost, c.prob, c.solutions) for pair, c in first.costs.items()
        } == {
            pair: (c.cost, c.prob, c.solutions)
            for pair, c in second.costs.items()
        }

    def test_edit_invalidates_affected_measurements(self):
        database = Database.from_source(FACTS)
        context = AnalysisContext(database).refresh()
        context.calibrate()
        database.replace_predicate(("q", 2), database.clauses(("q", 2)))
        context.refresh()
        context.reset_counters()
        context.calibrate(declarations=Declarations())
        # q/2 and its caller join/2 were remeasured; p/1 replayed.
        assert context.misses[CALIBRATION_STAGE] == len(
            list(all_input_modes(2))
        ) * 2
        assert context.hits[CALIBRATION_STAGE] == len(list(all_input_modes(1)))
