"""Unit tests for empirical cost calibration (§I-E / §VIII)."""

import pytest

from repro.analysis.calibration import CalibrationOptions, EmpiricalCalibrator
from repro.analysis.declarations import Declarations
from repro.analysis.modes import parse_mode_string
from repro.prolog import Database


def mode(text):
    return parse_mode_string(text)


FACTS = """
p(a). p(b). p(c). p(d).
q(a, 1). q(b, 2). q(c, 3).
join(X, N) :- p(X), q(X, N).
"""


class TestConstantPool:
    def test_collected_from_facts(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        assert set(calibrator.constants) >= {"a", "b", "c", "d"}

    def test_explicit_pool(self):
        calibrator = EmpiricalCalibrator(
            Database.from_source(FACTS), constants=["a"]
        )
        assert calibrator.constants == ["a"]


class TestSampling:
    def test_open_mode_single_query(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        assert calibrator.sample_queries(("p", 1), mode("-")) == ["p(V0)"]

    def test_bound_mode_samples_constants(self):
        calibrator = EmpiricalCalibrator(
            Database.from_source(FACTS), CalibrationOptions(max_samples=3)
        )
        queries = calibrator.sample_queries(("p", 1), mode("+"))
        assert len(queries) == 3
        assert all(q.startswith("p(") for q in queries)

    def test_deterministic(self):
        database = Database.from_source(FACTS)
        first = EmpiricalCalibrator(database).sample_queries(("q", 2), mode("+-"))
        second = EmpiricalCalibrator(database).sample_queries(("q", 2), mode("+-"))
        assert first == second


class TestMeasurement:
    def test_open_fact_predicate(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        stats = calibrator.measure(("p", 1), mode("-"))
        assert stats.cost == 1.0
        assert stats.solutions == 4.0
        assert stats.prob == 1.0

    def test_rule_cost_includes_subgoals(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        stats = calibrator.measure(("join", 2), mode("--"))
        assert stats.cost > 1.0
        assert stats.solutions == 3.0

    def test_bound_mode_probability(self):
        calibrator = EmpiricalCalibrator(
            Database.from_source(FACTS),
            CalibrationOptions(max_samples=4),
            constants=["a", "b", "c", "zzz"],
        )
        stats = calibrator.measure(("p", 1), mode("+"))
        assert 0.0 < stats.prob <= 1.0

    def test_divergent_mode_returns_none(self):
        source = "len([], 0). len([_ | T], N) :- len(T, M), N is M + 1."
        calibrator = EmpiricalCalibrator(
            Database.from_source(source),
            CalibrationOptions(call_budget=200, max_depth=100),
        )
        # len/2 in mode (-,-) enumerates forever.
        assert calibrator.measure(("len", 2), mode("--")) is None
        assert calibrator.failures


class TestCalibrate:
    def test_fills_declarations(self):
        calibrator = EmpiricalCalibrator(Database.from_source(FACTS))
        declarations = calibrator.calibrate()
        assert declarations.cost_for(("join", 2), mode("--")) is not None
        assert declarations.cost_for(("p", 1), mode("+")) is not None

    def test_existing_declarations_kept(self):
        database = Database.from_source(
            ":- cost(p/1, [-], 99, 0.5).\n" + FACTS
        )
        declared = Declarations.from_database(database)
        calibrator = EmpiricalCalibrator(database)
        result = calibrator.calibrate(declarations=declared)
        assert result.cost_for(("p", 1), mode("-")).cost == 99.0

    def test_feeds_reorderer(self):
        from repro.prolog import Engine
        from repro.reorder import Reorderer

        source = """
        wide(1). wide(2). wide(3). wide(4). wide(5). wide(6).
        narrow(2).
        both(X) :- wide(X), narrow(X).
        """
        database = Database.from_source(source)
        declarations = EmpiricalCalibrator(database).calibrate()
        program = Reorderer(database, declarations=declarations).reorder()
        version = program.version_name(("both", 1), mode("-"))
        clause = program.database.clauses((version, 1))[0]
        assert str(clause.body).startswith("narrow")
        original = sorted(s.key() for s in Engine(database).ask("both(X)"))
        new = sorted(s.key() for s in program.engine().ask("both(X)"))
        assert original == new
