"""Unit tests for directive parsing and validation."""

import pytest

from repro.analysis.declarations import (
    Declarations,
    default_output_mode,
    parse_indicator,
)
from repro.analysis.modes import ModeItem, parse_mode_string
from repro.errors import DeclarationError
from repro.prolog import Database, parse_term

PLUS, MINUS, ANY = ModeItem.PLUS, ModeItem.MINUS, ModeItem.ANY


def declarations_from(source: str) -> Declarations:
    return Declarations.from_database(Database.from_source(source))


class TestParseIndicator:
    def test_ok(self):
        assert parse_indicator(parse_term("foo/2")) == ("foo", 2)

    def test_bad(self):
        with pytest.raises(DeclarationError):
            parse_indicator(parse_term("foo"))
        with pytest.raises(DeclarationError):
            parse_indicator(parse_term("foo/bar"))


class TestDefaultOutput:
    def test_minus_promoted(self):
        assert default_output_mode((MINUS, PLUS, ANY)) == (PLUS, PLUS, ANY)


class TestEntries:
    def test_entry(self):
        decls = declarations_from(":- entry(f/1). f(a).")
        assert decls.entries == [("f", 1)]

    def test_undefined_entry_rejected(self):
        with pytest.raises(DeclarationError):
            declarations_from(":- entry(g/1). f(a).")

    def test_builtin_entry_allowed(self):
        decls = declarations_from(":- entry(write/1). f(a).")
        assert decls.entries == [("write", 1)]


class TestLegalModes:
    def test_pair_form(self):
        decls = declarations_from(":- legal_mode(f(+, -), f(+, +)). f(a, b).")
        (pair,) = decls.declared_pairs(("f", 2))
        assert pair.input == (PLUS, MINUS)
        assert pair.output == (PLUS, PLUS)

    def test_single_form_defaults_output(self):
        decls = declarations_from(":- legal_mode(f(-, +)). f(a, b).")
        (pair,) = decls.declared_pairs(("f", 2))
        assert pair.output == (PLUS, PLUS)

    def test_dec10_mode_alias(self):
        decls = declarations_from(":- mode(f(+)). f(a).")
        assert len(decls.declared_pairs(("f", 1))) == 1

    def test_mismatched_pair_rejected(self):
        with pytest.raises(DeclarationError):
            declarations_from(":- legal_mode(f(+), g(+)). f(a). g(a).")

    def test_multiple_modes_accumulate(self):
        decls = declarations_from(
            ":- legal_mode(f(+, -)). :- legal_mode(f(-, +)). f(a, b)."
        )
        assert len(decls.declared_pairs(("f", 2))) == 2


class TestRecursiveAndFixed:
    def test_recursive(self):
        decls = declarations_from(":- recursive(f/1). f(a).")
        assert ("f", 1) in decls.recursive

    def test_fixed(self):
        decls = declarations_from(":- fixed(f/1). f(a).")
        assert ("f", 1) in decls.fixed


class TestCosts:
    def test_cost4(self):
        decls = declarations_from(":- cost(f/2, [+, -], 12, 0.75). f(a, b).")
        declaration = decls.cost_for(("f", 2), parse_mode_string("+-"))
        assert declaration.cost == 12.0
        assert declaration.prob == 0.75
        assert declaration.expected_solutions == 0.75

    def test_cost5_with_solutions(self):
        decls = declarations_from(":- cost(f/1, [+], 5, 0.9, 3.5). f(a).")
        declaration = decls.cost_for(("f", 1), parse_mode_string("+"))
        assert declaration.expected_solutions == 3.5

    def test_cost_mode_with_any_matches(self):
        decls = declarations_from(":- cost(f/1, [?], 5, 0.9). f(a).")
        assert decls.cost_for(("f", 1), parse_mode_string("+")) is not None
        assert decls.cost_for(("f", 1), parse_mode_string("-")) is not None

    def test_bad_probability(self):
        with pytest.raises(DeclarationError):
            declarations_from(":- cost(f/1, [+], 5, 1.5). f(a).")

    def test_arity_mismatch(self):
        with pytest.raises(DeclarationError):
            declarations_from(":- cost(f/2, [+], 5, 0.5). f(a, b).")

    def test_missing_cost_is_none(self):
        decls = declarations_from("f(a).")
        assert decls.cost_for(("f", 1), parse_mode_string("+")) is None


class TestOtherDirectives:
    def test_match_prob(self):
        decls = declarations_from(":- match_prob(f/1, 0.25). f(a).")
        assert decls.match_probs[("f", 1)] == 0.25

    def test_domain_size(self):
        decls = declarations_from(":- domain_size(f/2, 1, 150). f(a, b).")
        assert decls.domain_sizes[(("f", 2), 1)] == 150

    def test_domain_size_position_out_of_range(self):
        with pytest.raises(DeclarationError):
            declarations_from(":- domain_size(f/2, 3, 150). f(a, b).")

    def test_unknown_directive_collected(self):
        decls = declarations_from(":- wibble(3). f(a).")
        assert len(decls.unknown) == 1
