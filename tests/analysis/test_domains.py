"""Unit tests for Warren-style domain estimation (§VI-A-4)."""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.domains import DomainAnalysis
from repro.analysis.modes import parse_mode_string
from repro.prolog import Database


def analyse(source):
    database = Database.from_source(source)
    return DomainAnalysis(database, Declarations.from_database(database))


FACTS = """
borders(france, spain). borders(france, italy). borders(spain, portugal).
borders(italy, austria).
country(france). country(spain). country(italy). country(portugal).
country(austria).
"""


class TestCollection:
    def test_tuple_count(self):
        analysis = analyse(FACTS)
        assert analysis.tuple_count(("borders", 2)) == 4
        assert analysis.tuple_count(("country", 1)) == 5
        assert analysis.tuple_count(("missing", 1)) == 0

    def test_domains(self):
        analysis = analyse(FACTS)
        assert analysis.domain(("borders", 2), 1) == {"france", "spain", "italy"}
        assert analysis.domain_size(("borders", 2), 1) == 3
        assert analysis.domain_size(("borders", 2), 2) == 4

    def test_rules_contribute_no_tuples(self):
        analysis = analyse("f(a). g(X) :- f(X).")
        assert analysis.tuple_count(("g", 1)) == 0

    def test_number_domains(self):
        analysis = analyse("age(tom, 5). age(ann, 7). age(pat, 5).")
        assert analysis.domain(("age", 2), 2) == {5, 7}

    def test_declared_domain_size_overrides(self):
        analysis = analyse(":- domain_size(borders/2, 1, 150).\n" + FACTS)
        assert analysis.domain_size(("borders", 2), 1) == 150

    def test_minimum_domain_size_one(self):
        analysis = analyse("f(a).")
        assert analysis.domain_size(("f", 1), 1) == 1
        assert analysis.domain_size(("ghost", 1), 1) == 1


class TestWarrenFunction:
    def test_paper_borders_example(self):
        # §I-E: borders/2 with 900 tuples and domain 150 gives 900
        # uninstantiated, 6 partly instantiated, 0.04 fully instantiated.
        source = ":- domain_size(b/2, 1, 150). :- domain_size(b/2, 2, 150). b(x, y)."
        database = Database.from_source(source)
        analysis = DomainAnalysis(database, Declarations.from_database(database))
        analysis._tuples[("b", 2)] = 900  # the paper's tuple count
        assert analysis.warren_number(("b", 2), parse_mode_string("--")) == 900
        assert analysis.warren_number(("b", 2), parse_mode_string("+-")) == 6
        assert analysis.warren_number(("b", 2), parse_mode_string("++")) == pytest.approx(0.04)

    def test_empty_predicate(self):
        analysis = analyse(FACTS)
        assert analysis.warren_number(("missing", 2), parse_mode_string("--")) == 0.0

    def test_success_probability_capped(self):
        analysis = analyse(FACTS)
        assert analysis.success_probability(("borders", 2), parse_mode_string("--")) == 1.0
        partial = analysis.success_probability(("borders", 2), parse_mode_string("++"))
        assert 0.0 < partial < 1.0

    def test_declared_match_prob_wins(self):
        analysis = analyse(":- match_prob(borders/2, 0.2).\n" + FACTS)
        assert analysis.success_probability(("borders", 2), parse_mode_string("--")) == 0.2

    def test_fact_match_probability(self):
        analysis = analyse(FACTS)
        probability = analysis.fact_match_probability(
            ("borders", 2), parse_mode_string("+-")
        )
        assert probability == pytest.approx(1 / 3)

    def test_expected_solutions_matches_warren(self):
        analysis = analyse(FACTS)
        mode = parse_mode_string("+-")
        assert analysis.expected_solutions(("borders", 2), mode) == (
            analysis.warren_number(("borders", 2), mode)
        )
