"""Unit tests for call-graph construction and goal traversal."""

from repro.analysis.callgraph import CallGraph, iter_called_goals, iter_subgoal_indicators
from repro.prolog import Database, parse_term


def indicators(body_text):
    return list(iter_subgoal_indicators(parse_term(body_text)))


class TestIterCalledGoals:
    def test_plain_conjunction(self):
        assert indicators("a, b(1), c(X, Y)") == [("a", 0), ("b", 1), ("c", 2)]

    def test_skips_control_atoms(self):
        assert indicators("!, true, fail, a") == [("a", 0)]

    def test_looks_through_disjunction(self):
        assert set(indicators("(a ; b)")) == {("a", 0), ("b", 0)}

    def test_looks_through_if_then_else(self):
        assert set(indicators("(c -> t ; e)")) == {("c", 0), ("t", 0), ("e", 0)}

    def test_looks_through_negation(self):
        assert indicators("\\+ a(X)") == [("a", 1)]
        assert indicators("not(a)") == [("a", 0)]

    def test_findall_yields_itself_and_inner(self):
        result = indicators("findall(X, p(X), L)")
        assert ("findall", 3) in result
        assert ("p", 1) in result

    def test_caret_stripped_in_setof(self):
        result = indicators("setof(X, Y ^ p(X, Y), S)")
        assert ("p", 2) in result
        assert ("^", 2) not in result

    def test_variable_goal_skipped(self):
        assert indicators("a, G") == [("a", 0)]

    def test_call_once_forall(self):
        assert set(indicators("call(a), once(b), forall(c, d)")) >= {
            ("a", 0), ("b", 0), ("c", 0), ("d", 0),
        }


class TestCallGraph:
    SOURCE = """
    top :- middle(X), write(X).
    middle(X) :- leaf(X).
    middle(X) :- other(X).
    leaf(1).
    other(2).
    island(9).
    """

    def test_callees(self):
        graph = CallGraph(Database.from_source(self.SOURCE))
        assert graph.calls(("top", 0)) == {("middle", 1), ("write", 1)}
        assert graph.calls(("middle", 1)) == {("leaf", 1), ("other", 1)}
        assert graph.calls(("leaf", 1)) == set()

    def test_callers(self):
        graph = CallGraph(Database.from_source(self.SOURCE))
        assert graph.called_by(("leaf", 1)) == {("middle", 1)}
        assert graph.called_by(("top", 0)) == set()

    def test_entry_points(self):
        graph = CallGraph(Database.from_source(self.SOURCE))
        assert set(graph.entry_points()) == {("top", 0), ("island", 1)}

    def test_declared_entries_first(self):
        graph = CallGraph(Database.from_source(self.SOURCE))
        entries = graph.entry_points(declared=[("middle", 1)])
        assert entries[0] == ("middle", 1)
        assert ("top", 0) in entries

    def test_self_recursive_is_entry_if_uncalled(self):
        graph = CallGraph(Database.from_source("loop :- loop."))
        assert graph.entry_points() == [("loop", 0)]

    def test_reachable(self):
        graph = CallGraph(Database.from_source(self.SOURCE))
        reachable = graph.reachable_from([("top", 0)])
        assert reachable == {("top", 0), ("middle", 1), ("leaf", 1), ("other", 1)}

    def test_reachable_excludes_islands(self):
        graph = CallGraph(Database.from_source(self.SOURCE))
        assert ("island", 1) not in graph.reachable_from([("top", 0)])


class TestCatchTraversal:
    def test_catch_goal_and_recovery_traversed(self):
        result = indicators("catch(a(X), Ball, b(X))")
        assert ("catch", 3) in result
        assert ("a", 1) in result
        assert ("b", 1) in result

    def test_fixity_sees_through_catch(self):
        from repro.analysis.fixity import FixityAnalysis

        database = Database.from_source(
            "guarded :- catch(noisy, _, true). noisy :- write(x)."
        )
        analysis = FixityAnalysis(database, CallGraph(database))
        assert analysis.is_fixed(("guarded", 0))
