"""Unit tests for semifixity analysis (paper §IV-C)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.declarations import Declarations
from repro.analysis.semifixity import SemifixityAnalysis
from repro.prolog import Database, parse_term


def analyse(source, with_declarations=True):
    database = Database.from_source(source)
    declarations = (
        Declarations.from_database(database) if with_declarations else None
    )
    return SemifixityAnalysis(database, CallGraph(database), declarations)


class TestBuiltinSeeds:
    def test_var_semifixed(self):
        analysis = analyse("f(1).")
        assert analysis.positions(("var", 1)) == {1}
        assert analysis.positions(("nonvar", 1)) == {1}

    def test_negation_semifixed(self):
        analysis = analyse("f(1).")
        assert analysis.is_semifixed(("\\+", 1))
        assert analysis.is_semifixed(("not", 1))

    def test_unification_not_semifixed(self):
        analysis = analyse("f(1).")
        assert not analysis.is_semifixed(("=", 2))


class TestPropagation:
    def test_var_wrapper(self):
        analysis = analyse("unbound(X) :- var(X).")
        assert analysis.positions(("unbound", 1)) == {1}

    def test_propagates_two_levels(self):
        analysis = analyse(
            "unbound(X) :- var(X). check(A, B) :- unbound(B), A = B."
        )
        assert 2 in analysis.positions(("check", 2))

    def test_only_head_positions_with_culprit(self):
        analysis = analyse("half(X, Y) :- var(X), Y = 1.")
        assert analysis.positions(("half", 2)) == {1}

    def test_local_culprit_does_not_propagate(self):
        # The culprit variable does not appear in the head.
        analysis = analyse("f(X) :- g(Y), var(Y), X = done. g(_).")
        assert not analysis.is_semifixed(("f", 1))

    def test_negation_culprits(self):
        analysis = analyse("male(X) :- not(female(X)). female(a).")
        assert analysis.positions(("male", 1)) == {1}


class TestCutGuarded:
    def test_paper_example(self):
        # a(X, Y, b) :- !.  /  a(X, Y, Z) :- c(X, Y), d(Y, Z).  (§IV-C)
        analysis = analyse(
            "a(_, _, b) :- !. a(X, Y, Z) :- c(X, Y), d(Y, Z). c(1, 2). d(2, 3)."
        )
        assert analysis.positions(("a", 3)) == {3}

    def test_single_clause_cut_not_semifixed(self):
        analysis = analyse("once_(X) :- g(X), !. g(1).")
        assert not analysis.is_semifixed(("once_", 1))

    def test_var_only_head_with_cut_not_semifixed(self):
        analysis = analyse("f(X) :- !. f(X) :- g(X). g(1).")
        assert not analysis.is_semifixed(("f", 1))


class TestDeclaredPins:
    def test_declared_mode_releases_culprits(self):
        # unequal/2 via \== is semifixed, but the declaration pins both
        # arguments to '+', so legality protects it and no constraint
        # remains (§V-A: annotations buy reordering freedom).
        pinned = analyse(
            ":- legal_mode(unequal(+, +)). unequal(X, Y) :- X \\== Y."
        )
        assert not pinned.is_semifixed(("unequal", 2))

    def test_without_declaration_culprits_remain(self):
        free = analyse("unequal(X, Y) :- X \\== Y.", with_declarations=False)
        assert free.positions(("unequal", 2)) == {1, 2}

    def test_pin_stops_upward_propagation(self):
        pinned = analyse(
            ":- legal_mode(unequal(+, +)). "
            "unequal(X, Y) :- X \\== Y. "
            "distinct_pair(X, Y) :- p(X), p(Y), unequal(X, Y). p(1). p(2)."
        )
        assert not pinned.is_semifixed(("distinct_pair", 2))


class TestCulpritVariables:
    def test_culprit_vars_of_goal(self):
        analysis = analyse("f(1).")
        goal = parse_term("var(X)")
        assert analysis.culprit_variables(goal) == [goal.args[0]]

    def test_culprits_inside_structure(self):
        analysis = analyse("f(1).")
        goal = parse_term("\\+ p(X, f(Y))")
        assert len(analysis.culprit_variables(goal)) == 2

    def test_no_culprits_for_plain_goal(self):
        analysis = analyse("f(1).")
        assert analysis.culprit_variables(parse_term("f(X)")) == []
