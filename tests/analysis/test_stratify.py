"""Stratum eligibility: which recursion components may run bottom-up.

The semi-naive backend is only sound and terminating on the
datalog-like fragment; :func:`repro.analysis.stratify.stratify` draws
that line. These tests pin the refusals — non-range-restricted heads,
negation into a component's own recursion, builtins, control
constructs, partially instantiated structure arguments, undefined and
transitively ineligible callees — and the acceptances (ground structure
arguments, stratified negation, mutual recursion).
"""

from repro.analysis.stratify import analyze_clause, stratify
from repro.prolog import Database


def strat(source):
    return stratify(Database.from_source(source))


class TestClauseAnalysis:
    def test_fact_decomposes_empty(self):
        database = Database.from_source("p(a, b).")
        [clause] = database.clauses(("p", 2))
        info = analyze_clause(clause)
        assert info.is_fact and not info.reasons

    def test_rule_splits_positive_and_negative_literals(self):
        database = Database.from_source(
            "p(X) :- q(X), \\+ r(X).\nq(a).\nr(b)."
        )
        [clause] = database.clauses(("p", 1))
        info = analyze_clause(clause)
        assert not info.reasons
        assert [g.name for g in info.positives] == ["q"]
        assert [g.name for g in info.negatives] == ["r"]

    def test_cut_is_refused(self):
        database = Database.from_source("p(X) :- q(X), !.\nq(a).")
        [clause] = database.clauses(("p", 1))
        assert any("control" in r for r in analyze_clause(clause).reasons)

    def test_builtin_is_refused(self):
        database = Database.from_source("p(X) :- q(X), X > 1.\nq(2).")
        [clause] = database.clauses(("p", 1))
        assert any("builtin" in r for r in analyze_clause(clause).reasons)


class TestEligibility:
    def test_recursive_datalog_stratum_is_eligible(self):
        stratification = strat(
            """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
        assert stratification.eligible(("path", 2))
        info = stratification.info(("path", 2))
        assert info.recursive and info.rule_count == 2

    def test_mutual_recursion_is_one_eligible_stratum(self):
        stratification = strat(
            """
            base(a).
            p(X) :- base(X).
            p(X) :- q(X).
            q(X) :- p(X).
            """
        )
        info = stratification.info(("p", 1))
        assert info.eligible and info.recursive
        assert info.predicates == (("p", 1), ("q", 1))
        assert stratification.stratum_index(("p", 1)) == stratification.stratum_index(("q", 1))

    def test_non_range_restricted_head_is_refused(self):
        stratification = strat("p(X, Y) :- q(X).\nq(a).")
        info = stratification.info(("p", 2))
        assert not info.eligible
        assert any("range-restricted" in r for r in info.reasons)

    def test_non_range_restricted_negation_is_refused(self):
        stratification = strat(
            "p(X) :- q(X), \\+ r(Y).\nq(a).\nr(b)."
        )
        info = stratification.info(("p", 1))
        assert not info.eligible
        assert any("range-restricted" in r for r in info.reasons)

    def test_negation_into_own_component_is_refused(self):
        stratification = strat(
            """
            q(a).
            p(X) :- q(X), \\+ p(X).
            """
        )
        info = stratification.info(("p", 1))
        assert not info.eligible
        assert any("unstratifiable" in r for r in info.reasons)

    def test_negation_into_mutual_recursion_is_refused(self):
        stratification = strat(
            """
            q(a).
            p(X) :- q(X), \\+ r(X).
            r(X) :- p(X).
            """
        )
        info = stratification.info(("p", 1))
        assert not info.eligible
        assert any("unstratifiable" in r for r in info.reasons)

    def test_stratified_negation_is_eligible(self):
        stratification = strat(
            """
            node(a). node(b).
            edge(a, b).
            reach(X) :- edge(a, X).
            unreached(X) :- node(X), \\+ reach(X).
            """
        )
        info = stratification.info(("unreached", 1))
        assert info.eligible and info.uses_negation

    def test_partially_instantiated_structure_is_refused(self):
        # nat(s(X)) builds new terms every round: non-datalog.
        stratification = strat("nat(z).\nnat(s(X)) :- nat(X).")
        info = stratification.info(("nat", 1))
        assert not info.eligible
        assert any("partially instantiated" in r for r in info.reasons)

    def test_ground_structure_arguments_are_fine(self):
        stratification = strat("p(f(a)).\np(g(a, b)).\nq(X) :- p(X).")
        assert stratification.eligible(("q", 1))

    def test_undefined_callee_is_refused(self):
        stratification = strat("p(X) :- ghost(X).")
        info = stratification.info(("p", 1))
        assert not info.eligible
        assert any("undefined" in r for r in info.reasons)

    def test_ineligibility_is_transitive(self):
        stratification = strat(
            """
            base(1).
            shifted(Y) :- base(X), Y is X + 1.
            user(Y) :- shifted(Y).
            """
        )
        assert not stratification.eligible(("shifted", 1))
        info = stratification.info(("user", 1))
        assert not info.eligible
        assert any("depends on ineligible" in r for r in info.reasons)

    def test_strata_come_callees_first(self):
        stratification = strat(
            """
            edge(a, b).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
        assert stratification.stratum_index(("edge", 2)) < stratification.stratum_index(("path", 2))

    def test_fact_and_rule_counts(self):
        stratification = strat(
            """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
        edge = stratification.info(("edge", 2))
        path = stratification.info(("path", 2))
        assert (edge.fact_count, edge.rule_count) == (2, 0)
        assert (path.fact_count, path.rule_count) == (0, 2)
