"""Unit tests for recursion detection (Tarjan SCC)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.recursion import (
    recursion_groups,
    recursive_predicates,
    strongly_connected_components,
)
from repro.prolog import Database


def graph_of(source):
    return CallGraph(Database.from_source(source))


class TestSCC:
    def test_acyclic(self):
        components = strongly_connected_components(
            {("a", 0): {("b", 0)}, ("b", 0): {("c", 0)}, ("c", 0): set()}
        )
        assert all(len(c) == 1 for c in components)
        # Reverse topological: callees before callers.
        order = [next(iter(c)) for c in components]
        assert order.index(("c", 0)) < order.index(("a", 0))

    def test_cycle(self):
        components = strongly_connected_components(
            {("a", 0): {("b", 0)}, ("b", 0): {("a", 0)}}
        )
        assert {("a", 0), ("b", 0)} in components

    def test_ignores_non_graph_nodes(self):
        components = strongly_connected_components(
            {("a", 0): {("write", 1)}}
        )
        assert components == [{("a", 0)}]


class TestRecursionDetection:
    def test_direct_recursion(self):
        graph = graph_of("loop(X) :- loop(X).")
        assert recursive_predicates(graph) == {("loop", 1)}

    def test_list_recursion(self):
        graph = graph_of(
            "len([], 0). len([_ | T], N) :- len(T, M), N is M + 1."
        )
        assert ("len", 2) in recursive_predicates(graph)

    def test_mutual_recursion(self):
        graph = graph_of(
            "even(0). even(X) :- X > 0, Y is X - 1, odd(Y). "
            "odd(X) :- X > 0, Y is X - 1, even(Y)."
        )
        recursive = recursive_predicates(graph)
        assert ("even", 1) in recursive and ("odd", 1) in recursive
        groups = recursion_groups(graph)
        assert {("even", 1), ("odd", 1)} in groups

    def test_non_recursive(self):
        graph = graph_of("a :- b. b :- c. c.")
        assert recursive_predicates(graph) == set()

    def test_same_name_different_arity_not_recursive(self):
        graph = graph_of("f(X) :- f(X, 1). f(_, _).")
        assert recursive_predicates(graph) == set()

    def test_recursion_through_control(self):
        graph = graph_of("walk(X) :- (stop(X) ; walk(X)). stop(0).")
        assert ("walk", 1) in recursive_predicates(graph)

    def test_permutation_select(self):
        graph = graph_of(
            "select(X, [X | Xs], Xs). "
            "select(X, [Y | Xs], [Y | Ys]) :- select(X, Xs, Ys). "
            "permutation(Xs, [X | Ys]) :- select(X, Xs, Zs), permutation(Zs, Ys). "
            "permutation([], [])."
        )
        recursive = recursive_predicates(graph)
        assert ("select", 3) in recursive
        assert ("permutation", 2) in recursive
