"""Unit tests for mode inference by abstract interpretation (§V-E)."""

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.declarations import Declarations
from repro.analysis.mode_inference import (
    ModeInference,
    join_modes,
    structural_descent_positions,
)
from repro.analysis.modes import ModeItem, parse_mode_string
from repro.prolog import Database

PLUS, MINUS, ANY = ModeItem.PLUS, ModeItem.MINUS, ModeItem.ANY


def inference_for(source):
    database = Database.from_source(source)
    return ModeInference(database, Declarations.from_database(database))


def mode(text):
    return parse_mode_string(text)


class TestJoinModes:
    def test_identical(self):
        assert join_modes(mode("+-"), mode("+-")) == mode("+-")

    def test_disagreement_is_any(self):
        assert join_modes(mode("+-"), mode("-+")) == (ANY, ANY)


class TestFacts:
    def test_fact_grounds_on_success(self):
        inference = inference_for("f(a, b).")
        assert inference.output_mode(("f", 2), mode("--")) == mode("++")

    def test_fact_any_mode_legal(self):
        inference = inference_for("f(a).")
        assert inference.legal_input_modes(("f", 1)) == [mode("+"), mode("-")]


class TestBuiltins:
    def test_is_demands_ground_rhs(self):
        inference = inference_for("calc(X, Y) :- X is Y + 1.")
        assert inference.is_legal(("calc", 2), mode("-+"))
        assert not inference.is_legal(("calc", 2), mode("--"))
        assert not inference.is_legal(("calc", 2), mode("+-"))

    def test_comparison_demands_both(self):
        inference = inference_for("gt(X, Y) :- X > Y.")
        assert inference.legal_input_modes(("gt", 2)) == [mode("++")]

    def test_functor_construct_mode(self):
        inference = inference_for("mk(T, N) :- functor(T, N, 2).")
        assert inference.is_legal(("mk", 2), mode("+-"))
        assert inference.is_legal(("mk", 2), mode("-+"))
        assert not inference.is_legal(("mk", 2), mode("--"))

    def test_type_tests_any_mode(self):
        inference = inference_for("isv(X) :- var(X).")
        assert len(inference.legal_input_modes(("isv", 1))) == 2


class TestRules:
    SOURCE = """
    p(a, b). p(c, d).
    q(b). q(d).
    join(X, Y) :- p(X, Y), q(Y).
    chain(X, Z) :- p(X, Y), p(Y, Z).
    """

    def test_rule_output_ground(self):
        inference = inference_for(self.SOURCE)
        assert inference.output_mode(("join", 2), mode("--")) == mode("++")

    def test_intermediate_variable_ok(self):
        inference = inference_for(self.SOURCE)
        assert inference.is_legal(("chain", 2), mode("--"))

    def test_goal_sequencing(self):
        # The test Y > 1 needs Y from p; legal only because p runs first.
        inference = inference_for("p(1, 2). f(X) :- p(X, Y), Y > 1.")
        assert inference.is_legal(("f", 1), mode("-"))

    def test_illegal_everywhere(self):
        inference = inference_for("f(X, Y) :- X > Y.")
        # > demands both ground; mode (-,-) has no legal clause.
        assert inference.output_mode(("f", 2), mode("--")) is None

    def test_disjunction_joins_branches(self):
        inference = inference_for("f(X) :- (X = 1 ; X = 2).")
        assert inference.output_mode(("f", 1), mode("-")) == mode("+")

    def test_if_then_else(self):
        inference = inference_for("f(X, Y) :- (X > 0 -> Y = pos ; Y = neg).")
        assert inference.is_legal(("f", 2), mode("+-"))
        assert not inference.is_legal(("f", 2), mode("--"))

    def test_negation_makes_no_bindings(self):
        inference = inference_for("f(X) :- \\+ p(X), X = 1. p(9).")
        output = inference.output_mode(("f", 1), mode("-"))
        assert output == mode("+")

    def test_findall_grounds_result(self):
        inference = inference_for("f(L) :- findall(X, p(X), L). p(1).")
        assert inference.output_mode(("f", 1), mode("-")) == mode("+")

    def test_undefined_predicate_illegal_with_warning(self):
        inference = inference_for("f(X) :- ghost(X).")
        assert inference.output_mode(("f", 1), mode("-")) is None
        assert any("undefined" in w for w in inference.warnings)


class TestDeclarations:
    def test_declared_modes_win(self):
        inference = inference_for(
            ":- legal_mode(f(+)). f(X) :- g(X). g(1)."
        )
        assert inference.is_legal(("f", 1), mode("+"))
        # Undeclared mode is illegal even though inference would allow it.
        assert not inference.is_legal(("f", 1), mode("-"))

    def test_declared_output_used(self):
        inference = inference_for(
            ":- legal_mode(f(-), f(?)). f(X) :- g(X). g(1)."
        )
        assert inference.output_mode(("f", 1), mode("-")) == (ANY,)

    def test_actual_instantiation_strengthens_output(self):
        inference = inference_for(":- legal_mode(f(?), f(?)). f(1).")
        assert inference.output_mode(("f", 1), mode("+")) == mode("+")


class TestRecursion:
    DELETE = """
    delete(X, [X | Y], Y).
    delete(U, [X | Y], [X | V]) :- delete(U, Y, V).
    """

    def test_structural_descent_positions(self):
        database = Database.from_source(self.DELETE)
        clause = database.clauses(("delete", 3))[1]
        assert structural_descent_positions(clause) == {2, 3}

    def test_delete_modes(self):
        # The paper's example (§V-B): with only the first argument
        # instantiated, delete/3 "produces an infinite set of solutions".
        inference = inference_for(self.DELETE)
        assert inference.is_legal(("delete", 3), mode("?+?"))
        assert inference.is_legal(("delete", 3), mode("--+"))
        assert not inference.is_legal(("delete", 3), mode("+--"))

    def test_append_modes(self):
        inference = inference_for(
            "append([], X, X). append([X | Y], Z, [X | W]) :- append(Y, Z, W)."
        )
        assert inference.is_legal(("append", 3), mode("++-"))
        assert inference.is_legal(("append", 3), mode("--+"))
        assert not inference.is_legal(("append", 3), mode("---"))

    def test_permutation_needs_declaration(self):
        source = """
        select(X, [X | Xs], Xs).
        select(X, [Y | Xs], [Y | Ys]) :- select(X, Xs, Ys).
        permutation(Xs, [X | Ys]) :- select(X, Xs, Zs), permutation(Zs, Ys).
        permutation([], []).
        """
        # Without a declaration, permutation's recursion is not
        # structurally descending -> all modes rejected, with a warning.
        inference = inference_for(source)
        assert not inference.is_legal(("permutation", 2), mode("+-"))
        assert any("permutation" in w for w in inference.warnings)
        # With the declaration, the declared mode is legal.
        declared = inference_for(":- legal_mode(permutation(+, -)).\n" + source)
        assert declared.is_legal(("permutation", 2), mode("+-"))
        assert not declared.is_legal(("permutation", 2), mode("-+"))

    def test_mutual_recursion_permissive(self):
        inference = inference_for(
            "even(z). even(s(X)) :- odd(X). odd(s(X)) :- even(X)."
        )
        assert inference.is_legal(("even", 1), mode("+"))

    def test_fixpoint_terminates(self):
        inference = inference_for(
            "f(X, Y) :- g(X, Y). g(X, Y) :- f(X, Y). g(a, b)."
        )
        assert inference.output_mode(("f", 2), mode("--")) is not None


class TestMetaCallModes:
    def test_catch_over_partial_goal_legal(self):
        inference = inference_for(
            "safe(X) :- catch(risky(X), _, fail). risky(1)."
        )
        assert inference.is_legal(("safe", 1), mode("-"))
        assert inference.is_legal(("safe", 1), mode("+"))

    def test_call_over_partial_goal_legal(self):
        inference = inference_for("meta(X) :- call(risky(X)). risky(1).")
        assert inference.is_legal(("meta", 1), mode("-"))
