"""Unit tests for fixity analysis (paper §IV-B)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.declarations import Declarations
from repro.analysis.fixity import FixityAnalysis, side_effect_builtins
from repro.prolog import Database, parse_term


def analyse(source):
    database = Database.from_source(source)
    declarations = Declarations.from_database(database)
    return FixityAnalysis(database, CallGraph(database), declarations)


class TestSideEffectBuiltins:
    def test_io_builtins_included(self):
        builtins = side_effect_builtins()
        assert ("write", 1) in builtins
        assert ("nl", 0) in builtins
        assert ("read", 1) in builtins

    def test_pure_builtins_excluded(self):
        builtins = side_effect_builtins()
        assert ("is", 2) not in builtins
        assert ("=", 2) not in builtins


class TestDirectFixity:
    def test_write_makes_fixed(self):
        analysis = analyse("log(X) :- write(X), nl.")
        assert analysis.is_fixed(("log", 1))

    def test_pure_predicate_not_fixed(self):
        analysis = analyse("add(X, Y, Z) :- Z is X + Y.")
        assert not analysis.is_fixed(("add", 3))

    def test_declared_fixed(self):
        analysis = analyse(":- fixed(f/1). f(a).")
        assert analysis.is_fixed(("f", 1))


class TestContamination:
    SOURCE = """
    w(X) :- write(X).
    x(X) :- w(X).
    y(X) :- x(X).
    z(X) :- pureleaf(X).
    pureleaf(1).
    """

    def test_ancestors_contaminated(self):
        analysis = analyse(self.SOURCE)
        # "a predicate x that calls w might print as well. A predicate y
        # that calls x might also print" (§IV-B)
        for name in ("w", "x", "y"):
            assert analysis.is_fixed((name, 1)), name

    def test_siblings_clean(self):
        analysis = analyse(self.SOURCE)
        assert not analysis.is_fixed(("z", 1))
        assert not analysis.is_fixed(("pureleaf", 1))

    def test_fixed_predicates_only_user(self):
        analysis = analyse(self.SOURCE)
        assert ("write", 1) not in analysis.fixed_predicates
        assert ("w", 1) in analysis.fixed_predicates

    def test_fixity_through_control(self):
        analysis = analyse("maybe(X) :- (X > 0 -> write(X) ; true).")
        assert analysis.is_fixed(("maybe", 1))

    def test_fixity_through_negation(self):
        analysis = analyse("odd(X) :- \\+ noisy(X). noisy(X) :- write(X).")
        assert analysis.is_fixed(("odd", 1))

    def test_fixity_through_recursion(self):
        analysis = analyse(
            "dump([]). dump([X | T]) :- write(X), dump(T)."
        )
        assert analysis.is_fixed(("dump", 1))


class TestGoalAndClauseQueries:
    def test_goal_is_fixed(self):
        analysis = analyse("f(1).")
        assert analysis.goal_is_fixed(parse_term("write(hello)"))
        assert not analysis.goal_is_fixed(parse_term("f(X)"))

    def test_compound_goal_fixed_when_branch_writes(self):
        analysis = analyse("f(1).")
        assert analysis.goal_is_fixed(parse_term("(f(X) ; write(X))"))
        assert not analysis.goal_is_fixed(parse_term("(f(X) ; f(Y))"))

    def test_clause_is_fixed(self):
        analysis = analyse("f(1).")
        assert analysis.clause_is_fixed(parse_term("f(X), write(X)"))
        assert not analysis.clause_is_fixed(parse_term("f(X), f(Y)"))
