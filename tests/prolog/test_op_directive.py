"""Tests for user-defined operators via ``:- op/3``."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog import Database, Engine
from repro.prolog.reader.parser import Parser
from repro.reorder.system import Reorderer

SOURCE = """
:- op(700, xfx, likes).
:- op(650, xf, squared).

mary likes wine.
john likes beer.
john likes mary.

value(X squared, V) :- V is X * X.
fan(X) :- X likes _.
"""


class TestParsing:
    def test_infix_user_operator(self):
        parser = Parser(":- op(700, xfx, likes). mary likes wine.")
        terms = parser.read_program()
        assert terms[1].indicator == ("likes", 2)

    def test_postfix_user_operator(self):
        parser = Parser(":- op(650, xf, squared). v(3 squared).")
        terms = parser.read_program()
        inner = terms[1].args[0]
        assert inner.indicator == ("squared", 1)

    def test_prefix_user_operator(self):
        parser = Parser(":- op(200, fy, very). v(very hot).")
        terms = parser.read_program()
        assert terms[1].args[0].indicator == ("very", 1)

    def test_directive_applies_only_forward(self):
        with pytest.raises(PrologSyntaxError):
            Parser("mary likes wine. :- op(700, xfx, likes).").read_program()

    def test_bad_priority_rejected(self):
        with pytest.raises(PrologSyntaxError):
            Parser(":- op(9999, xfx, likes). a.").read_program()

    def test_can_disable(self):
        parser = Parser(":- op(700, xfx, likes). ok.")
        terms = parser.read_program(apply_op_directives=False)
        assert len(terms) == 2  # directive read but not applied


class TestDatabaseAndEngine:
    def test_consult_applies_ops(self):
        database = Database.from_source(SOURCE)
        assert database.defines(("likes", 2))
        assert database.defines(("fan", 1))

    def test_queries_use_database_operators(self):
        engine = Engine(Database.from_source(SOURCE))
        assert engine.succeeds("john likes beer")
        assert engine.count_solutions("X likes Y") == 3
        (solution,) = engine.ask("value(4 squared, V)")
        assert str(solution["V"]) == "16"

    def test_ops_survive_multiple_consults(self):
        database = Database.from_source(":- op(700, xfx, likes). a likes b.")
        database.consult("c likes d.")
        assert len(database.clauses(("likes", 2))) == 2

    def test_copy_shares_operators(self):
        database = Database.from_source(SOURCE)
        other = database.copy()
        other.consult("sue likes tea.")
        assert len(other.clauses(("likes", 2))) == 4


class TestReorderingWithOps:
    def test_reorder_and_roundtrip(self):
        database = Database.from_source(SOURCE)
        program = Reorderer(database).reorder()
        engine = program.engine()
        assert engine.succeeds("fan(john)")
        # The emitted source uses the custom operator and re-parses.
        text = program.source()
        assert "likes" in text
        rebuilt = Database(indexing=True)
        rebuilt.operators = database.operators
        rebuilt.consult(text)
        assert Engine(rebuilt).count_solutions("X likes Y") == 3


class TestWriterWithCustomOps:
    def test_emitted_source_uses_operator_notation(self):
        from repro.prolog.writer import program_to_string

        database = Database.from_source(":- op(700, xfx, likes). a likes b.")
        text = program_to_string(database.to_terms(), database.operators)
        assert "a likes b." in text

    def test_default_writer_falls_back_to_canonical(self):
        from repro.prolog.writer import program_to_string

        database = Database.from_source(":- op(700, xfx, likes). a likes b.")
        text = program_to_string(database.to_terms())  # standard table
        assert "likes(a, b)." in text

    def test_roundtrip_with_shared_table(self):
        from repro.prolog.writer import program_to_string

        database = Database.from_source(
            ":- op(700, xfx, likes). a likes b. c likes d."
        )
        text = program_to_string(database.to_terms(), database.operators)
        rebuilt = Database()
        rebuilt.operators = database.operators
        rebuilt.consult(text)
        assert len(rebuilt.clauses(("likes", 2))) == 2
