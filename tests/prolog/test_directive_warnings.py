"""Unknown- and malformed-directive handling: the database warnings
channel, did-you-mean suggestions, and CLI surfacing."""

import pytest

from repro.cli import main
from repro.prolog import Database


class TestWarningsChannel:
    def test_unknown_directive_warns(self):
        database = Database.from_source(":- tabel(foo/2).\nfoo(a, b).")
        assert len(database.warnings) == 1
        assert "unknown directive: tabel" in database.warnings[0]

    def test_did_you_mean_suggestion(self):
        database = Database.from_source(":- tabel(foo/2).\nfoo(a, b).")
        assert "did you mean 'table'?" in database.warnings[0]

    def test_no_suggestion_for_gibberish(self):
        database = Database.from_source(":- zzqqxx(foo).\nfoo(a).")
        assert len(database.warnings) == 1
        assert "did you mean" not in database.warnings[0]

    def test_known_directives_do_not_warn(self):
        database = Database.from_source(
            ":- table p/1.\n"
            ":- dynamic q/1.\n"
            ":- entry(p/1).\n"
            "p(X) :- q(X).\nq(a).\n"
        )
        assert database.warnings == []

    def test_malformed_table_directive_warns(self):
        database = Database.from_source(":- table foo.\nfoo(a).")
        assert len(database.warnings) == 1
        assert "table" in database.warnings[0]
        assert ("foo", 0) not in database.tabled

    def test_warnings_survive_copy(self):
        database = Database.from_source(":- tabel(foo/2).\nfoo(a, b).")
        assert database.copy().warnings == database.warnings


class TestCLISurfacing:
    @pytest.fixture()
    def misspelled_file(self, tmp_path):
        path = tmp_path / "misspelled.pl"
        path.write_text(":- tabel(path/2).\npath(a, b).\n")
        return str(path)

    def test_run_prints_warning_to_stderr(self, misspelled_file, capsys):
        assert main(["run", misspelled_file, "path(X, Y)"]) == 0
        captured = capsys.readouterr()
        assert "warning: unknown directive: tabel" in captured.err
        assert "did you mean 'table'?" in captured.err
        assert "warning" not in captured.out

    def test_analyze_prints_warning(self, misspelled_file, capsys):
        main(["analyze", misspelled_file])
        assert "unknown directive: tabel" in capsys.readouterr().err
