"""Unit tests for the pretty-printer, including parse/print round-trips."""

import pytest

from repro.prolog.reader.parser import parse_term, parse_terms
from repro.prolog.terms import Atom, Struct, Var, make_list, structural_eq
from repro.prolog.writer import clause_to_string, program_to_string, term_to_string


class TestAtoms:
    def test_plain(self):
        assert term_to_string(Atom("foo")) == "foo"

    def test_needs_quotes(self):
        assert term_to_string(Atom("hello world")) == "'hello world'"

    def test_symbolic_unquoted(self):
        assert term_to_string(Atom(":-")) == ":-"

    def test_empty_list(self):
        assert term_to_string(Atom("[]")) == "[]"

    def test_uppercase_start_quoted(self):
        assert term_to_string(Atom("Foo")) == "'Foo'"

    def test_quote_escaping(self):
        assert term_to_string(Atom("it's")) == r"'it\'s'"


class TestNumbers:
    def test_int(self):
        assert term_to_string(42) == "42"

    def test_negative(self):
        assert term_to_string(-3) == "-3"

    def test_float(self):
        assert term_to_string(2.5) == "2.5"


class TestVariables:
    def test_named(self):
        assert term_to_string(Var("X")) == "X"

    def test_two_distinct_same_name(self):
        term = Struct("f", (Var("X"), Var("X")))
        text = term_to_string(term)
        assert text == "f(X, X1)"


class TestStructs:
    def test_canonical(self):
        assert term_to_string(Struct("f", (Atom("a"), 1))) == "f(a, 1)"

    def test_infix_operator(self):
        term = parse_term("1 + 2 * 3")
        assert term_to_string(term) == "1 + 2 * 3"

    def test_parenthesises_lower_precedence(self):
        term = parse_term("(1 + 2) * 3")
        assert term_to_string(term) == "(1 + 2) * 3"

    def test_clause_neck(self):
        term = parse_term("a :- b, c")
        assert term_to_string(term) == "a :- b, c"

    def test_prefix_operator(self):
        assert term_to_string(parse_term("\\+ a")) == "\\+ a"

    def test_lists(self):
        assert term_to_string(make_list([1, 2, 3])) == "[1, 2, 3]"

    def test_open_list(self):
        term = parse_term("[a | T]")
        assert term_to_string(term) == "[a | T]"

    def test_braces(self):
        assert term_to_string(parse_term("{a, b}")) == "{a, b}"


class TestRoundTrip:
    CASES = [
        "f(a, B, [1, 2 | T])",
        "a :- b, c, d",
        "X is Y * 2 + 1",
        "(a ; b)",
        "(c -> t ; e)",
        "\\+ g(X)",
        "foo('quoted atom', 3.5)",
        "[[], [a], [a, b | C]]",
        "f(-1, - 1, -(X))",
        "setof(X, Y ^ p(X, Y), S)",
        "a = b",
        "t((X, Y, Z))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        term = parse_term(text)
        reparsed = parse_term(term_to_string(term))
        # Round-trips up to variable renaming: compare via canonical copy.
        assert term_to_string(reparsed) == term_to_string(term)


class TestClauseLayout:
    def test_fact(self):
        assert clause_to_string(parse_term("foo(a, b)")) == "foo(a, b)."

    def test_rule_layout(self):
        text = clause_to_string(parse_term("a :- b, c"))
        assert text == "a :-\n    b,\n    c."

    def test_directive(self):
        assert clause_to_string(parse_term(":- mode(f(+))")) == ":- mode(f(+))."

    def test_program_reparses(self):
        source = """
        female(X) :- girl(X).
        female(X) :- wife(_, X).
        grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
        girl(jan).
        """
        clauses = parse_terms(source)
        text = program_to_string(clauses)
        reparsed = parse_terms(text)
        assert len(reparsed) == len(clauses)
        assert program_to_string(reparsed) == text
