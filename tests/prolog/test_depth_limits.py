"""Depth-limit behaviour: typed errors for runaway recursion, the
RecursionError fallback, the recursion-limit clamp, and the CLI's
one-line error reporting."""

import sys

import pytest

from repro.cli import main
from repro.errors import DepthLimitExceeded
from repro.prolog import Engine
from repro.prolog.engine import Engine as EngineClass


LOOP = "loop :- loop.\n"


class TestTypedErrors:
    def test_max_depth_exceeded_is_typed(self):
        with pytest.raises(DepthLimitExceeded) as info:
            Engine.from_source(LOOP, max_depth=50).ask("loop")
        assert "depth 50 exceeded" in str(info.value)

    def test_recursion_error_becomes_typed(self):
        eng = Engine.from_source(
            LOOP, max_depth=10_000_000, adjust_recursion_limit=False
        )
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(700)
        try:
            with pytest.raises(DepthLimitExceeded) as info:
                eng.ask("loop")
        finally:
            sys.setrecursionlimit(limit)
        assert "recursion limit" in str(info.value)


class TestRecursionCapacity:
    def test_cap_is_respected(self):
        before = sys.getrecursionlimit()
        try:
            Engine.ensure_recursion_capacity(10**9)
            assert sys.getrecursionlimit() <= max(
                before, EngineClass.RECURSION_LIMIT_CAP
            )
        finally:
            sys.setrecursionlimit(before)

    def test_never_lowers_the_limit(self):
        before = sys.getrecursionlimit()
        try:
            Engine.ensure_recursion_capacity(100_000)
            raised = sys.getrecursionlimit()
            Engine.ensure_recursion_capacity(10)
            assert sys.getrecursionlimit() >= raised
        finally:
            sys.setrecursionlimit(before)

    def test_opt_out_engine_does_not_touch_the_limit(self):
        before = sys.getrecursionlimit()
        Engine.from_source(
            LOOP, max_depth=10**8, adjust_recursion_limit=False
        )
        assert sys.getrecursionlimit() == before


class TestCLIErrorReporting:
    @pytest.fixture()
    def loop_file(self, tmp_path):
        path = tmp_path / "loop.pl"
        path.write_text(LOOP)
        return str(path)

    def test_depth_error_is_one_clean_line(self, loop_file, capsys):
        code = main(["run", loop_file, "loop"])
        captured = capsys.readouterr()
        assert code == 2
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert len(error_lines) == 1
        assert "depth" in error_lines[0]
        assert "Traceback" not in captured.err

    def test_syntax_error_is_one_clean_line(self, tmp_path, capsys):
        path = tmp_path / "bad.pl"
        path.write_text("foo(\n")
        code = main(["run", str(path), "foo(X)"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err
