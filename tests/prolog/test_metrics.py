"""Tests for the Metrics counters (arithmetic and serialization)."""

import json

from repro.prolog import Engine
from repro.prolog.metrics import Metrics


def sample(calls, unifications=0, entries=0, backtracks=0, by=None):
    return Metrics(
        calls=calls,
        unifications=unifications,
        clause_entries=entries,
        backtracks=backtracks,
        calls_by_predicate=dict(by or {}),
    )


class TestArithmetic:
    def test_add_sums_counters(self):
        total = sample(3, 2, 1, 1, {("p", 1): 3}) + sample(
            2, 1, 1, 0, {("p", 1): 1, ("q", 2): 1}
        )
        assert total.calls == 5
        assert total.unifications == 3
        assert total.clause_entries == 2
        assert total.backtracks == 1
        assert total.calls_by_predicate == {("p", 1): 4, ("q", 2): 1}

    def test_add_drops_zero_entries(self):
        total = sample(1, by={("p", 1): 1}) + sample(1, by={("p", 1): -1})
        assert ("p", 1) not in total.calls_by_predicate

    def test_add_inverts_sub(self):
        a = sample(7, 5, 3, 2, {("p", 1): 7})
        b = sample(3, 2, 1, 1, {("p", 1): 3})
        assert (a - b) + b == a

    def test_add_leaves_operands_unchanged(self):
        a = sample(1, by={("p", 1): 1})
        b = sample(2, by={("p", 1): 2})
        a + b
        assert a.calls == 1 and b.calls == 2
        assert a.calls_by_predicate == {("p", 1): 1}

    def test_summing_run_metrics(self):
        engine = Engine.from_source("p(1). p(2).")
        _, first = engine.run("p(X)")
        _, second = engine.run("p(1)")
        total = first + second
        assert total.calls == first.calls + second.calls
        assert total.calls_by_predicate[("p", 1)] == (
            first.calls_by_predicate[("p", 1)]
            + second.calls_by_predicate[("p", 1)]
        )


class TestToDict:
    def test_keys_become_indicator_strings(self):
        metrics = sample(2, by={("p", 1): 1, ("longer_name", 3): 1})
        data = metrics.to_dict()
        assert data["calls_by_predicate"] == {
            "longer_name/3": 1,
            "p/1": 1,
        }

    def test_sorted_deterministically(self):
        metrics = sample(0, by={("z", 1): 1, ("a", 2): 1, ("a", 1): 1})
        keys = list(metrics.to_dict()["calls_by_predicate"])
        assert keys == ["a/1", "a/2", "z/1"]

    def test_json_serialisable(self):
        engine = Engine.from_source("p(1). p(2). q(X) :- p(X).")
        _, metrics = engine.run("q(X)")
        decoded = json.loads(json.dumps(metrics.to_dict()))
        assert decoded["calls"] == metrics.calls
        assert decoded["calls_by_predicate"]["p/1"] == 1
