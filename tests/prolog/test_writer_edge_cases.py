"""Writer edge cases: quoting, precedence, negatives, deep nesting."""

import pytest

from repro.prolog import Database, Engine, parse_term
from repro.prolog.terms import Atom, Struct, Var, make_list
from repro.prolog.writer import term_to_string


def roundtrips(text):
    term = parse_term(text)
    return term_to_string(parse_term(term_to_string(term))) == term_to_string(term)


class TestQuoting:
    @pytest.mark.parametrize("name", [
        "hello world", "Capitalised", "_underscore", "with'quote",
        "with\nnewline", "123abc", "", "two  spaces", "ends_with_",
    ])
    def test_weird_atom_roundtrips(self, name):
        rendered = term_to_string(Atom(name))
        assert parse_term(rendered) is Atom(name)

    def test_symbolic_atoms_unquoted(self):
        for name in (":-", "-->", "=..", "@=<", "\\+"):
            assert "'" not in term_to_string(Atom(name))

    def test_solo_atoms(self):
        assert term_to_string(Atom("[]")) == "[]"
        assert term_to_string(Atom("{}")) == "{}"
        assert term_to_string(Atom("!")) == "!"


class TestPrecedence:
    CASES = [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "1 - (2 - 3)",
        "1 - 2 - 3",
        "- (1 + 2)",
        "a : - b",  # ':' is not an operator: parses as atoms? no — skip
    ]

    @pytest.mark.parametrize("text", [
        "1 + 2 * 3", "(1 + 2) * 3", "1 - (2 - 3)", "1 - 2 - 3",
        "2 ** 3 + 1", "a = b + c", "x : y",
    ])
    def test_roundtrip(self, text):
        if ":" in text and ":-" not in text:
            pytest.skip("':' is not in the standard table")
        assert roundtrips(text)

    def test_nested_clause_operators(self):
        assert roundtrips("a :- (b ; c), d")
        assert roundtrips("a :- (b -> c ; d)")
        assert roundtrips("a :- \\+ (b, c)")

    def test_comma_as_argument(self):
        assert roundtrips("f((a, b))")
        assert roundtrips("t((X, Y, Z))")

    def test_operator_argument_of_functor(self):
        assert roundtrips("f(1 + 2, a - b)")


class TestNegativeNumbers:
    def test_negative_int_in_list(self):
        assert term_to_string(make_list([-1, 2, -3])) == "[-1, 2, -3]"

    def test_negative_in_arith(self):
        term = parse_term("X is -1 + 2")
        rendered = term_to_string(term)
        engine = Engine(Database())
        (solution,) = engine.ask(rendered)
        assert str(solution["X"]) == "1"

    def test_negative_float(self):
        assert roundtrips("f(-2.5)")


class TestDeepNesting:
    def test_deep_struct(self):
        term = Atom("x")
        for _ in range(200):
            term = Struct("f", (term,))
        rendered = term_to_string(term)
        assert rendered.count("f(") == 200
        reparsed = parse_term(rendered)
        assert term_to_string(reparsed) == rendered

    def test_long_list(self):
        items = list(range(500))
        rendered = term_to_string(make_list(items))
        assert rendered.startswith("[0, 1,")
        assert len(parse_term(rendered).args) == 2

    def test_mixed_nesting(self):
        assert roundtrips("f([g(1 + 2), [a | T]], (x ; y))")
