"""The bottom-up semi-naive backend: units and engine integration.

Covers the three layers of :mod:`repro.prolog.bottomup` — the indexed
fact :class:`~repro.prolog.bottomup.Relation`, rule compilation, and
the semi-naive fixpoint — plus the engine-facing dispatcher: strategy
selection (``bottomup``/``auto``), SLD fallback for ineligible strata,
generation-counter invalidation on database mutation, and the
``StratumEvent`` observability records.
"""

import pytest

from repro.observability import attach
from repro.prolog import Database, Engine, parse_term
from repro.prolog.database import Clause
from repro.prolog.bottomup import (
    Relation,
    compile_rule,
    evaluate_component,
    ground_key,
)
from repro.analysis.stratify import analyze_clause
from repro.prolog.terms import Atom, Struct


def answers(engine, query):
    """The answer set of ``query`` as solution keys."""
    return {s.key() for s in engine.ask(query)}


class TestRelation:
    def test_add_deduplicates(self):
        relation = Relation(2)
        assert relation.add((Atom("a"), Atom("b")))
        assert not relation.add((Atom("a"), Atom("b")))
        assert len(relation) == 1

    def test_probe_narrows_by_column(self):
        relation = Relation(2)
        relation.add((Atom("a"), Atom("b")))
        relation.add((Atom("a"), Atom("c")))
        relation.add((Atom("x"), Atom("b")))
        assert len(list(relation.probe(0, ground_key(Atom("a"))))) == 2
        assert len(list(relation.probe(1, ground_key(Atom("b"))))) == 2
        assert list(relation.probe(0, ground_key(Atom("zz")))) == []

    def test_index_maintained_across_later_adds(self):
        relation = Relation(1)
        relation.add((Atom("a"),))
        assert len(list(relation.probe(0, ground_key(Atom("a"))))) == 1
        relation.add((Atom("b"),))
        assert len(list(relation.probe(0, ground_key(Atom("b"))))) == 1

    def test_ground_key_families_do_not_collide(self):
        # Atom a, number 1, and struct a(1) must all key differently,
        # and 1 vs 1.0 stay distinct (Prolog terms, not Python ==).
        keys = {
            ground_key(Atom("a")),
            ground_key(1),
            ground_key(1.0),
            ground_key(Struct("a", (1,))),
        }
        assert len(keys) == 4


class TestSemiNaive:
    def _closure(self, edges):
        database = Database.from_source(
            "\n".join(f"edge({a}, {b})." for a, b in edges)
            + "\npath(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n"
        )
        relations = {}
        edge_facts = []
        for clause in database.clauses(("edge", 2)):
            info = analyze_clause(clause)
            edge_facts.append((("edge", 2), tuple(clause.head.args)))
        evaluate_component([("edge", 2)], edge_facts, [], relations)
        rules = [
            compile_rule(analyze_clause(clause))
            for clause in database.clauses(("path", 2))
        ]
        stats = evaluate_component([("path", 2)], [], rules, relations)
        return relations[("path", 2)], stats

    def test_chain_closure_is_complete(self):
        relation, stats = self._closure([("a", "b"), ("b", "c"), ("c", "d")])
        pairs = {
            (args[0].name, args[1].name) for args in relation.tuples()
        }
        assert pairs == {
            ("a", "b"), ("b", "c"), ("c", "d"),
            ("a", "c"), ("b", "d"), ("a", "d"),
        }

    def test_cycle_reaches_fixpoint(self):
        relation, stats = self._closure([("a", "b"), ("b", "a")])
        assert len(relation) == 4  # all ordered pairs over {a, b}
        assert stats.delta_sizes[-1] == 0  # final round derived nothing

    def test_delta_rounds_are_recorded(self):
        _, stats = self._closure([("a", "b"), ("b", "c"), ("c", "d")])
        assert stats.rounds == len(stats.delta_sizes)
        assert stats.facts == 6
        assert stats.delta_sizes[0] == 3  # seeding: the 3 base edges


class TestEngineDispatch:
    CLOSURE = """
        edge(a, b). edge(b, c). edge(c, d).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
    """

    def test_bottomup_matches_topdown(self):
        topdown = Engine.from_source(self.CLOSURE)
        bottomup = Engine.from_source(self.CLOSURE, eval_strategy="bottomup")
        for query in ("path(a, X)", "path(X, d)", "path(X, Y)"):
            assert answers(bottomup, query) == answers(topdown, query)

    def test_left_recursion_terminates_bottomup(self):
        # Left recursion diverges under SLD; the materialization does
        # not care about clause orientation.
        source = """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
        """
        engine = Engine.from_source(source, eval_strategy="bottomup")
        assert len(answers(engine, "path(a, X)")) == 2

    def test_bound_argument_probes_relation(self):
        engine = Engine.from_source(self.CLOSURE, eval_strategy="bottomup")
        [solution] = engine.ask("path(c, X)")
        assert solution["X"].name == "d"

    def test_ineligible_predicates_fall_back_to_sld(self):
        source = """
            base(1). base(2).
            shifted(Y) :- base(X), Y is X + 1.
        """
        engine = Engine.from_source(source, eval_strategy="bottomup")
        assert engine._bottomup is not None
        assert {s["Y"] for s in engine.ask("shifted(Y)")} == {2, 3}

    def test_cut_programs_still_work(self):
        source = """
            grade(N, fail) :- N < 60, !.
            grade(_, pass).
        """
        engine = Engine.from_source(source, eval_strategy="bottomup")
        [solution] = engine.ask("grade(40, G)")
        assert solution["G"].name == "fail"

    def test_auto_selects_bottomup_for_recursive_strata(self):
        engine = Engine.from_source(self.CLOSURE, eval_strategy="auto")
        assert len(answers(engine, "path(a, X)")) == 3
        dispatcher = engine._bottomup
        assert dispatcher.selects(("path", 2))
        # Non-recursive fact tables stay demand-driven by default.
        assert not dispatcher.selects(("edge", 2))

    def test_invalid_strategy_is_rejected(self):
        with pytest.raises(ValueError):
            Engine.from_source("p(a).", eval_strategy="sideways")

    def test_add_clause_invalidates_materialization(self):
        engine = Engine.from_source(self.CLOSURE, eval_strategy="bottomup")
        assert len(answers(engine, "path(a, X)")) == 3
        engine.database.add_clause(
            Clause(parse_term("edge(d, e)"), Atom("true"))
        )
        assert len(answers(engine, "path(a, X)")) == 4

    def test_stratum_event_emitted(self):
        engine = Engine.from_source(self.CLOSURE, eval_strategy="bottomup")
        bus = attach(engine)
        engine.ask("path(a, X)")
        events = bus.by_kind("stratum")
        # One record per materialized stratum, dependencies first.
        assert [e.predicates for e in events] == [("edge/2",), ("path/2",)]
        event = events[-1]
        assert event.backend == "bottomup"
        assert event.facts == 6
        assert event.rounds == len(event.delta_sizes)
        record = event.to_record()
        assert record["kind"] == "stratum"
        assert record["delta_sizes"] == list(event.delta_sizes)

    def test_dependencies_materialize_first(self):
        source = """
            edge(a, b). edge(b, c).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            named(X) :- path(a, X).
        """
        engine = Engine.from_source(source, eval_strategy="bottomup")
        assert len(answers(engine, "named(X)")) == 2
