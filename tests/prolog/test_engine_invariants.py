"""Engine invariants: trail discipline, re-entrancy, determinism.

After any completed query (success, failure, or error), the trail must
be fully unwound and every variable stored in the database's clauses
must be unbound again — otherwise one query could corrupt the next.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import PrologError
from repro.prolog import Database, Engine
from repro.prolog.terms import Var, deref, term_variables

SOURCE = """
p(a, 1). p(b, 2). p(c, 3).
q(1). q(3).
r(X, N) :- p(X, N), q(N).
first(X) :- p(X, _), !.
neg(X) :- p(X, N), \\+ q(N).
loop(X) :- loop(X).
broken(X) :- X is foo + 1.
items([a, b, c]).
nth(I, X) :- items(L), between(1, 3, I), grab(I, L, X).
grab(1, [X | _], X).
grab(N, [_ | T], X) :- N > 1, M is N - 1, grab(M, T, X).
"""

QUERIES = [
    "p(X, N)",
    "r(X, N)",
    "first(X)",
    "neg(X)",
    "nth(I, X)",
    "p(zzz, N)",
    "findall(X, p(X, _), L)",
    "setof(N, X ^ p(X, N), S)",
    "(p(a, N) -> q(N) ; true)",
]


def database_variables(database):
    variables = []
    for clause in database.all_clauses():
        variables.extend(term_variables(clause.head))
        variables.extend(term_variables(clause.body))
    return variables


class TestTrailDiscipline:
    @pytest.mark.parametrize("query", QUERIES)
    def test_trail_empty_after_query(self, query):
        engine = Engine.from_source(SOURCE)
        engine.ask(query)
        assert len(engine.trail) == 0

    @pytest.mark.parametrize("query", QUERIES)
    def test_clause_variables_unbound_after_query(self, query):
        database = Database.from_source(SOURCE)
        engine = Engine(database)
        engine.ask(query)
        # Stored clauses are renamed on use, so their own variables must
        # never be bound; check anyway (a rename bug would show here).
        for variable in database_variables(database):
            assert variable.ref is None

    def test_trail_unwound_after_error(self):
        engine = Engine.from_source(SOURCE)
        with pytest.raises(PrologError):
            engine.ask("p(X, N), broken(X)")
        assert len(engine.trail) == 0

    def test_trail_unwound_after_depth_limit(self):
        engine = Engine.from_source(SOURCE, max_depth=30)
        with pytest.raises(PrologError):
            engine.ask("loop(x)")
        assert len(engine.trail) == 0


class TestReentrancy:
    def test_queries_independent(self):
        engine = Engine.from_source(SOURCE)
        first = [s.key() for s in engine.ask("r(X, N)")]
        engine.ask("first(X)")
        engine.ask("p(zzz, N)")
        second = [s.key() for s in engine.ask("r(X, N)")]
        assert first == second

    def test_partial_consumption_then_new_query(self):
        engine = Engine.from_source(SOURCE)
        iterator = engine.solve("p(X, N)")
        next(iterator)  # take one answer, abandon the rest
        results = engine.ask("q(N)")
        assert len(results) == 2

    def test_two_engines_share_database(self):
        database = Database.from_source(SOURCE)
        one, two = Engine(database), Engine(database)
        a = [s.key() for s in one.ask("r(X, N)")]
        b = [s.key() for s in two.ask("r(X, N)")]
        assert a == b


class TestDeterminism:
    @given(st.sampled_from(QUERIES))
    @settings(max_examples=20, deadline=None)
    def test_same_query_same_metrics(self, query):
        first_engine = Engine.from_source(SOURCE)
        _, first = first_engine.run(query)
        second_engine = Engine.from_source(SOURCE)
        _, second = second_engine.run(query)
        assert first.calls == second.calls
        assert first.unifications == second.unifications
