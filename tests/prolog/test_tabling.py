"""Behavioural tests for the tabling subsystem: variant memoization,
left-recursion termination, stratified negation, metrics, and events."""

import pytest

from repro.errors import IncompleteTableError
from repro.observability import TableEvent, attach
from repro.prolog import Database, Engine


LEFT = """
:- table path/2.
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- path(X, Z), edge(Z, Y).
path(X, Y) :- edge(X, Y).
"""

RIGHT = """
edge(a, b). edge(b, c). edge(c, d).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
"""


def engine(source, **kwargs):
    return Engine.from_source(source, **kwargs)


def pairs(eng, query="path(X, Y)"):
    return {(str(s["X"]), str(s["Y"])) for s in eng.ask(query)}


def chain(n):
    return "\n".join(f"edge(n{i}, n{i + 1})." for i in range(n))


class TestDirective:
    def test_table_directive_registers(self):
        assert ("path", 2) in Database.from_source(LEFT).tabled

    def test_conjunction_form(self):
        database = Database.from_source(":- table (p/2, q/3).\np(a, b).")
        assert ("p", 2) in database.tabled and ("q", 3) in database.tabled

    def test_list_form(self):
        database = Database.from_source(":- table [r/1].\nr(a).")
        assert ("r", 1) in database.tabled


class TestLeftRecursion:
    def test_terminates_with_complete_answers(self):
        assert pairs(engine(LEFT)) == pairs(engine(RIGHT))

    def test_bound_source(self):
        eng = engine(LEFT)
        assert {str(s["X"]) for s in eng.ask("path(a, X)")} == {"b", "c", "d"}

    def test_bound_sink(self):
        eng = engine(LEFT)
        assert {str(s["X"]) for s in eng.ask("path(X, d)")} == {"a", "b", "c"}

    def test_ground_call(self):
        eng = engine(LEFT)
        assert eng.succeeds("path(a, d)")
        assert not eng.succeeds("path(d, a)")

    def test_cycle_terminates(self):
        eng = engine(
            ":- table path/2.\n"
            "edge(a, b). edge(b, a).\n"
            "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
            "path(X, Y) :- edge(X, Y).\n"
        )
        assert pairs(eng) == {
            ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b"),
        }


class TestMemoization:
    def test_answers_deduplicated(self):
        eng = engine(
            ":- table p/1.\n"
            "p(X) :- q(X).\n"
            "p(X) :- r(X).\n"
            "q(a). q(b). r(a).\n"
        )
        assert [str(s["X"]) for s in eng.ask("p(X)")] == ["a", "b"]
        assert eng.metrics.table_answers == 2

    def test_metrics_counters(self):
        eng = engine(LEFT)
        eng.ask("path(X, Y)")
        metrics = eng.metrics
        assert metrics.table_misses >= 1
        assert metrics.tables_completed >= 1
        assert metrics.table_answers == 6

    def test_requery_hits_completed_table(self):
        eng = engine(LEFT)
        eng.ask("path(X, Y)")
        _, metrics = eng.run("path(X, Y)")
        assert metrics.table_hits == 1 and metrics.table_misses == 0

    def test_tables_cleared_on_database_change(self):
        eng = engine(LEFT)
        eng.ask("path(X, Y)")
        assert len(eng.tables) > 0
        eng.database.consult("edge(d, e).")
        assert {str(s["X"]) for s in eng.ask("path(a, X)")} == {
            "b", "c", "d", "e",
        }

    def test_table_all_flag(self):
        source = LEFT.replace(":- table path/2.\n", "")
        eng = engine(source, table_all=True)
        assert pairs(eng) == pairs(engine(RIGHT))

    def test_untabled_left_recursion_still_blows_up(self):
        from repro.errors import DepthLimitExceeded

        source = LEFT.replace(":- table path/2.\n", "")
        with pytest.raises(DepthLimitExceeded):
            engine(source, max_depth=64).ask("path(X, Y)")


class TestRecursionShapes:
    def test_mutual_recursion(self):
        eng = engine(
            ":- table (even/1, odd/1).\n"
            "even(z).\n"
            "even(s(N)) :- odd(N).\n"
            "odd(s(N)) :- even(N).\n"
        )
        assert eng.succeeds("even(s(s(z)))")
        assert not eng.succeeds("even(s(s(s(z))))")
        assert eng.succeeds("odd(s(s(s(z))))")

    def test_cut_inside_tabled_clause(self):
        eng = engine(
            ":- table first/1.\n"
            "first(X) :- q(X), !.\n"
            "q(a). q(b).\n"
        )
        assert [str(s["X"]) for s in eng.ask("first(X)")] == ["a"]

    def test_tabled_calls_untabled(self):
        eng = engine(
            ":- table anc/2.\n"
            "parent(tom, bob). parent(bob, ann).\n"
            "anc(X, Y) :- anc(X, Z), parent(Z, Y).\n"
            "anc(X, Y) :- parent(X, Y).\n"
        )
        assert {str(s["X"]) for s in eng.ask("anc(tom, X)")} == {"bob", "ann"}


class TestStratification:
    def test_negation_over_complete_table_is_fine(self):
        eng = engine(
            ":- table reach/1.\n"
            "edge(a, b).\n"
            "reach(a).\n"
            "reach(Y) :- reach(X), edge(X, Y).\n"
            "unreached(X) :- node(X), \\+ reach(X).\n"
            "node(a). node(b). node(c).\n"
        )
        assert [str(s["X"]) for s in eng.ask("unreached(X)")] == ["c"]

    def test_negation_through_incomplete_table_raises(self):
        eng = engine(
            ":- table p/1.\n"
            "q(a).\n"
            "p(X) :- q(X), \\+ p(X).\n"
        )
        with pytest.raises(IncompleteTableError) as info:
            eng.ask("p(X)")
        assert "not stratified" in str(info.value)

    def test_incomplete_tables_discarded_after_error(self):
        eng = engine(
            ":- table p/1.\n"
            "q(a).\n"
            "p(X) :- q(X), \\+ p(X).\n"
        )
        with pytest.raises(IncompleteTableError):
            eng.ask("p(X)")
        assert len(eng.tables) == 0


class TestEvents:
    def test_table_events_on_bus(self):
        eng = engine(LEFT)
        bus = attach(eng)
        eng.ask("path(a, X)")
        counts = bus.counts()
        assert counts.get("table.miss", 0) >= 1
        assert counts.get("table.answer_added", 0) == 3
        assert counts.get("table.complete", 0) >= 1
        table_events = [e for e in bus if isinstance(e, TableEvent)]
        assert all(e.indicator == ("path", 2) for e in table_events)

    def test_event_records(self):
        eng = engine(LEFT)
        bus = attach(eng)
        eng.ask("path(a, b)")
        records = [
            e.to_record() for e in bus if isinstance(e, TableEvent)
        ]
        assert records and all(r["kind"] == "table" for r in records)
        assert all(r["predicate"] == "path/2" for r in records)


class TestChainClosure:
    """The acceptance bar: on a long chain, tabling the right-recursive
    closure (same clauses, plus ``:- table``) cuts the sink query from
    Theta(n^2) to O(n) resolution calls — at least 10x fewer."""

    N = 200

    def sources(self):
        untabled = (
            chain(self.N) + "\n"
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
        )
        tabled = ":- table path/2.\n" + untabled
        return tabled, untabled

    def test_tabled_at_least_ten_times_cheaper(self):
        tabled_src, untabled_src = self.sources()
        query = f"path(X, n{self.N})"
        tabled_eng = engine(tabled_src, max_depth=4_000)
        tabled_solutions, tabled_metrics = tabled_eng.run(query)
        untabled_eng = engine(untabled_src, max_depth=4_000)
        untabled_solutions, untabled_metrics = untabled_eng.run(query)
        assert {str(s["X"]) for s in tabled_solutions} == {
            str(s["X"]) for s in untabled_solutions
        }
        assert len(tabled_solutions) == self.N
        assert untabled_metrics.calls >= 10 * tabled_metrics.calls
