"""Unit tests for unification and the trail."""

from repro.prolog.terms import Atom, Struct, Var, deref, make_list
from repro.prolog.unify import Trail, bind, occurs_in, unify


def fresh_trail():
    return Trail()


class TestTrail:
    def test_mark_and_undo(self):
        trail = fresh_trail()
        v1, v2 = Var(), Var()
        mark = trail.mark()
        bind(v1, Atom("a"), trail)
        bind(v2, Atom("b"), trail)
        assert len(trail) == 2
        trail.undo_to(mark)
        assert v1.ref is None and v2.ref is None
        assert len(trail) == 0

    def test_partial_undo(self):
        trail = fresh_trail()
        v1, v2 = Var(), Var()
        bind(v1, Atom("a"), trail)
        mark = trail.mark()
        bind(v2, Atom("b"), trail)
        trail.undo_to(mark)
        assert v1.ref is Atom("a")
        assert v2.ref is None
        v1.ref = None

    def test_undo_to_current_is_noop(self):
        trail = fresh_trail()
        trail.undo_to(trail.mark())


class TestUnifyBasics:
    def test_identical_atoms(self):
        assert unify(Atom("a"), Atom("a"), fresh_trail())

    def test_distinct_atoms_fail(self):
        assert not unify(Atom("a"), Atom("b"), fresh_trail())

    def test_numbers(self):
        assert unify(3, 3, fresh_trail())
        assert not unify(3, 4, fresh_trail())

    def test_int_float_do_not_unify(self):
        assert not unify(1, 1.0, fresh_trail())

    def test_atom_vs_number_fail(self):
        assert not unify(Atom("a"), 1, fresh_trail())

    def test_var_binds_to_atom(self):
        trail = fresh_trail()
        v = Var()
        assert unify(v, Atom("a"), trail)
        assert deref(v) is Atom("a")
        trail.undo_to(0)

    def test_atom_binds_var_symmetric(self):
        trail = fresh_trail()
        v = Var()
        assert unify(Atom("a"), v, trail)
        assert deref(v) is Atom("a")
        trail.undo_to(0)

    def test_var_var_aliasing(self):
        trail = fresh_trail()
        x, y = Var(), Var()
        assert unify(x, y, trail)
        assert unify(x, Atom("a"), trail)
        assert deref(y) is Atom("a")
        trail.undo_to(0)

    def test_same_var_trivial(self):
        trail = fresh_trail()
        v = Var()
        assert unify(v, v, trail)
        assert len(trail) == 0


class TestUnifyStructs:
    def test_matching_structs(self):
        trail = fresh_trail()
        x = Var()
        assert unify(Struct("f", (x, Atom("b"))), Struct("f", (Atom("a"), Atom("b"))), trail)
        assert deref(x) is Atom("a")
        trail.undo_to(0)

    def test_functor_mismatch(self):
        assert not unify(Struct("f", (1,)), Struct("g", (1,)), fresh_trail())

    def test_arity_mismatch(self):
        assert not unify(Struct("f", (1,)), Struct("f", (1, 2)), fresh_trail())

    def test_deep_structure(self):
        trail = fresh_trail()
        x = Var()
        left = Struct("f", (Struct("g", (x,)),))
        right = Struct("f", (Struct("g", (Struct("h", (1,)),)),))
        assert unify(left, right, trail)
        assert deref(x).indicator == ("h", 1)
        trail.undo_to(0)

    def test_lists(self):
        trail = fresh_trail()
        head, tail = Var(), Var()
        pattern = Struct(".", (head, tail))
        assert unify(pattern, make_list([1, 2, 3]), trail)
        assert deref(head) == 1
        trail.undo_to(0)

    def test_bindings_from_failed_unify_are_on_trail(self):
        # f(X, a) vs f(b, c): X gets bound before the mismatch is found;
        # the caller's undo-to-mark discipline must clean it up.
        trail = fresh_trail()
        x = Var()
        mark = trail.mark()
        assert not unify(
            Struct("f", (x, Atom("a"))), Struct("f", (Atom("b"), Atom("c"))), trail
        )
        trail.undo_to(mark)
        assert x.ref is None


class TestOccursCheck:
    def test_occurs_in_direct(self):
        v = Var()
        assert occurs_in(v, Struct("f", (v,)))

    def test_occurs_in_deep(self):
        v = Var()
        assert occurs_in(v, Struct("f", (Struct("g", (Atom("a"), v)),)))

    def test_not_occurs(self):
        assert not occurs_in(Var(), Struct("f", (Var(),)))

    def test_occurs_follows_bindings(self):
        trail = fresh_trail()
        v, w = Var(), Var()
        bind(w, Struct("f", (v,)), trail)
        assert occurs_in(v, w)
        trail.undo_to(0)

    def test_cyclic_unify_rejected_with_check(self):
        trail = fresh_trail()
        v = Var()
        assert not unify(v, Struct("f", (v,)), trail, occurs_check=True)
        trail.undo_to(0)

    def test_cyclic_unify_allowed_without_check(self):
        trail = fresh_trail()
        v = Var()
        assert unify(v, Struct("f", (v,)), trail, occurs_check=False)
        trail.undo_to(0)
