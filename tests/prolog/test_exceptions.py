"""Tests for throw/1 and catch/3."""

import pytest

from repro.errors import (
    CallBudgetExceeded,
    DepthLimitExceeded,
    InstantiationError,
    PrologThrow,
)
from repro.prolog import Engine


def engine(source="", **kwargs):
    return Engine.from_source(source, **kwargs)


def one(eng, query, var):
    (solution,) = eng.ask(query)
    return str(solution[var])


class TestThrow:
    def test_uncaught_ball_surfaces(self):
        with pytest.raises(PrologThrow) as excinfo:
            engine().succeeds("throw(my_ball)")
        assert str(excinfo.value.ball) == "my_ball"

    def test_unbound_ball_rejected(self):
        with pytest.raises(InstantiationError):
            engine().succeeds("throw(B)")

    def test_ball_is_copied(self):
        # The thrown ball carries the bindings at throw time.
        with pytest.raises(PrologThrow) as excinfo:
            engine().succeeds("X = payload(42), throw(wrapped(X))")
        assert str(excinfo.value.ball) == "wrapped(payload(42))"


class TestCatch:
    def test_catches_matching_ball(self):
        assert one(engine(), "catch(throw(oops), E, true)", "E") == "oops"

    def test_recovery_runs(self):
        assert one(
            engine(), "catch(throw(oops), oops, R = recovered)", "R"
        ) == "recovered"

    def test_non_matching_ball_rethrown(self):
        with pytest.raises(PrologThrow):
            engine().succeeds("catch(throw(alpha), beta, true)")

    def test_no_ball_passes_through(self):
        eng = engine("f(1). f(2).")
        assert [str(s["X"]) for s in eng.ask("catch(f(X), _, fail)")] == ["1", "2"]

    def test_goal_bindings_undone_before_recovery(self):
        eng = engine("step(X) :- X = started, throw(boom).")
        (solution,) = eng.ask("catch(step(X), boom, true)")
        # X's binding from the aborted goal must be gone.
        assert "X" not in solution or str(solution["X"]) == "X"

    def test_nested_catch_inner_wins(self):
        result = one(
            engine(),
            "catch(catch(throw(b), b, W = inner), b, W = outer)",
            "W",
        )
        assert result == "inner"

    def test_nested_catch_outer_on_mismatch(self):
        result = one(
            engine(),
            "catch(catch(throw(z), b, W = inner), z, W = outer)",
            "W",
        )
        assert result == "outer"

    def test_throw_from_deep_call(self):
        eng = engine("deep(0) :- throw(bottom). deep(N) :- M is N - 1, deep(M).")
        assert one(eng, "catch(deep(5), E, true)", "E") == "bottom"


class TestEngineErrorsCatchable:
    def test_instantiation_error(self):
        result = one(engine(), "catch(X is Y + 1, error(K, _), true)", "K")
        assert result == "instantiation_error"

    def test_existence_error(self):
        result = one(engine(), "catch(ghost(1), error(K, _), true)", "K")
        assert result == "existence_error"

    def test_evaluation_error(self):
        result = one(engine(), "catch(X is 1 // 0, error(K, _), true)", "K")
        assert result == "evaluation_error"

    def test_type_error(self):
        result = one(engine(), "catch(atom_length(3, N), error(K, _), true)", "K")
        assert result == "type_error"


class TestSafetyBoundsStayUncatchable:
    def test_depth_limit(self):
        eng = engine("loop :- loop.", max_depth=30)
        with pytest.raises(DepthLimitExceeded):
            eng.succeeds("catch(loop, _, true)")

    def test_call_budget(self):
        eng = engine("f(1). g :- f(_), g.", call_budget=50, max_depth=20)
        with pytest.raises((CallBudgetExceeded, DepthLimitExceeded)):
            eng.succeeds("catch(g, _, true)")
