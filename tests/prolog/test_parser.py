"""Unit tests for the operator-precedence parser."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.reader.parser import Parser, parse_term, parse_terms
from repro.prolog.terms import Atom, Struct, Var, list_to_python


def s(name, *args):
    return Struct(name, args)


class TestPrimaries:
    def test_atom(self):
        assert parse_term("foo") is Atom("foo")

    def test_integer(self):
        assert parse_term("42") == 42

    def test_float(self):
        assert parse_term("3.5") == 3.5

    def test_variable(self):
        term = parse_term("X")
        assert isinstance(term, Var)
        assert term.name == "X"

    def test_compound(self):
        term = parse_term("f(a, b)")
        assert term.indicator == ("f", 2)
        assert term.args == (Atom("a"), Atom("b"))

    def test_nested(self):
        term = parse_term("f(g(X), h(1, 2.0))")
        assert term.args[0].indicator == ("g", 1)
        assert term.args[1].args == (1, 2.0)

    def test_quoted_atom_functor(self):
        assert parse_term("'my pred'(a)").name == "my pred"

    def test_string_becomes_code_list(self):
        term = parse_term('"ab"')
        assert list_to_python(term) == [97, 98]

    def test_braces(self):
        term = parse_term("{a, b}")
        assert term.indicator == ("{}", 1)


class TestVariables:
    def test_same_name_same_var_in_clause(self):
        term = parse_term("f(X, X)")
        assert term.args[0] is term.args[1]

    def test_underscore_always_fresh(self):
        term = parse_term("f(_, _)")
        assert term.args[0] is not term.args[1]

    def test_fresh_per_clause(self):
        clauses = parse_terms("f(X). g(X).")
        assert clauses[0].args[0] is not clauses[1].args[0]

    def test_variable_map(self):
        parser = Parser("f(Alpha, Beta).")
        parser.read_term()
        assert set(parser.last_variable_map()) == {"Alpha", "Beta"}


class TestLists:
    def test_empty(self):
        assert parse_term("[]") is Atom("[]")

    def test_elements(self):
        assert list_to_python(parse_term("[1, 2, 3]")) == [1, 2, 3]

    def test_tail(self):
        term = parse_term("[H | T]")
        assert isinstance(term.args[0], Var)
        assert isinstance(term.args[1], Var)

    def test_multi_head_tail(self):
        term = parse_term("[a, b | T]")
        assert term.args[0] is Atom("a")
        inner = term.args[1]
        assert inner.args[0] is Atom("b")

    def test_nested_lists(self):
        term = parse_term("[[1], [2, 3]]")
        outer = list_to_python(term)
        assert list_to_python(outer[0]) == [1]
        assert list_to_python(outer[1]) == [2, 3]


class TestOperators:
    def test_clause(self):
        term = parse_term("a :- b")
        assert term.indicator == (":-", 2)

    def test_conjunction_right_assoc(self):
        term = parse_term("a, b, c")
        assert term.name == ","
        assert term.args[0] is Atom("a")
        assert term.args[1].name == ","

    def test_disjunction_binds_looser_than_conjunction(self):
        term = parse_term("a, b ; c")
        assert term.name == ";"
        assert term.args[0].name == ","

    def test_if_then_else_shape(self):
        term = parse_term("(c -> t ; e)")
        assert term.name == ";"
        assert term.args[0].name == "->"

    def test_arith_precedence(self):
        term = parse_term("1 + 2 * 3")
        assert term.name == "+"
        assert term.args[1].name == "*"

    def test_left_assoc_minus(self):
        term = parse_term("1 - 2 - 3")
        assert term.name == "-"
        assert term.args[0].name == "-"

    def test_power_right_side(self):
        term = parse_term("2 ** 3")
        assert term.indicator == ("**", 2)

    def test_comparison_non_assoc(self):
        term = parse_term("X is Y + 1")
        assert term.name == "is"
        assert term.args[1].name == "+"

    def test_unary_minus_number(self):
        assert parse_term("-5") == -5
        assert parse_term("-2.5") == -2.5

    def test_unary_minus_term(self):
        term = parse_term("-(a)")
        assert term.indicator == ("-", 1)

    def test_negation_prefix(self):
        term = parse_term("\\+ a")
        assert term.indicator == ("\\+", 1)

    def test_binary_minus_after_atom(self):
        term = parse_term("x - 1")
        assert term.indicator == ("-", 2)

    def test_parenthesised_comma_in_args(self):
        term = parse_term("f((a, b), c)")
        assert term.arity == 2
        assert term.args[0].name == ","

    def test_operator_as_quoted_functor(self):
        term = parse_term("'+'(1, 2)")
        assert term.indicator == ("+", 2)

    def test_univ(self):
        term = parse_term("X =.. [f, A]")
        assert term.indicator == ("=..", 2)

    def test_directive(self):
        term = parse_term(":- mode(foo(+, -))")
        assert term.indicator == (":-", 1)
        assert term.args[0].indicator == ("mode", 1)

    def test_mode_items_parse(self):
        # '+' and '-' as prefix operators applied to nothing would fail;
        # inside mode declarations they are atoms in argument positions.
        term = parse_term("mode(f(+, -, ?))")
        args = term.args[0].args
        assert [a.name for a in args] == ["+", "-", "?"]


class TestPrograms:
    def test_multiple_clauses(self):
        clauses = parse_terms("a. b :- c. d(1).")
        assert len(clauses) == 3

    def test_comments_between_clauses(self):
        clauses = parse_terms("a. % one\n/* two */ b.")
        assert len(clauses) == 2

    def test_empty_program(self):
        assert parse_terms("") == []
        assert parse_terms("  % just a comment\n") == []


class TestErrors:
    def test_missing_terminator(self):
        with pytest.raises(PrologSyntaxError):
            parse_terms("a :- b")

    def test_unbalanced_paren(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("f(a")

    def test_trailing_junk(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("a b")

    def test_unexpected_close(self):
        with pytest.raises(PrologSyntaxError):
            parse_term(")")

    def test_two_infix_in_a_row(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("1 + * 2")


class TestRealClauses:
    """Clauses lifted from the paper's own listings."""

    def test_grandmother(self):
        term = parse_term("grandmother(GC, GM) :- grandparent(GC, GM), female(GM)")
        head, body = term.args
        assert head.indicator == ("grandmother", 2)
        assert body.name == ","

    def test_show_all_loop(self):
        term = parse_term("show_all :- t(X, Y, Z), write((X, Y, Z)), nl, fail")
        assert term.args[0] is Atom("show_all")

    def test_length_clause(self):
        term = parse_term("length([_ | List], C, L) :- C1 is C + 1, length(List, C1, L)")
        assert term.args[0].indicator == ("length", 3)

    def test_dispatcher(self):
        source = """
        aunt(X, Y) :-
            ( var(X) ->
                ( var(Y) -> aunt_uu(X, Y) ; aunt_ui(X, Y) )
            ;   ( var(Y) -> aunt_iu(X, Y) ; aunt_ii(X, Y) )
            ).
        """
        (clause,) = parse_terms(source)
        body = clause.args[1]
        assert body.name == ";"
        assert body.args[0].name == "->"
