"""Cross-validation of the SLD engine against an independent reference.

For pure Datalog programs (ground facts + conjunctive rules, no
builtins, negation, or structures) the set of derivable ground atoms is
the least fixpoint of the immediate-consequence operator. We implement
that bottom-up evaluator here, independently of the engine, and check
on hand-written and hypothesis-generated programs that the engine
derives exactly the same atom sets — and that the reorderer preserves
them too.
"""

from itertools import product
from typing import Dict, FrozenSet, List, Set, Tuple

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.prolog import Database, Engine
from repro.prolog.database import body_goals
from repro.prolog.terms import Atom, Struct, Var, deref
from repro.reorder.system import Reorderer

GroundAtom = Tuple[str, Tuple[str, ...]]


def _const_str(term) -> str:
    return str(deref(term))


def _atom_of(term) -> GroundAtom:
    term = deref(term)
    if isinstance(term, Atom):
        return (term.name, ())
    assert isinstance(term, Struct)
    return (term.name, tuple(_const_str(a) for a in term.args))


def least_model(database: Database) -> Set[GroundAtom]:
    """Bottom-up least fixpoint (naive immediate consequences)."""
    facts: Set[GroundAtom] = set()
    rules = []
    for clause in database.all_clauses():
        if clause.is_fact:
            facts.add(_atom_of(clause.head))
        else:
            rules.append(clause)

    def match(pattern, atom: GroundAtom, bindings: Dict[int, str]):
        pattern = deref(pattern)
        name, args = atom
        if isinstance(pattern, Atom):
            return dict(bindings) if pattern.name == name and not args else None
        assert isinstance(pattern, Struct)
        if pattern.name != name or pattern.arity != len(args):
            return None
        new_bindings = dict(bindings)
        for argument, value in zip(pattern.args, args):
            argument = deref(argument)
            if isinstance(argument, Var):
                bound = new_bindings.get(id(argument))
                if bound is None:
                    new_bindings[id(argument)] = value
                elif bound != value:
                    return None
            else:  # atom or number constant
                if _const_str(argument) != value:
                    return None
        return new_bindings

    model = set(facts)
    while True:
        added = False
        for rule in rules:
            goals = body_goals(rule.body)
            frontiers: List[Dict[int, str]] = [{}]
            for goal in goals:
                next_frontiers = []
                for bindings in frontiers:
                    for atom in model:
                        extended = match(goal, atom, bindings)
                        if extended is not None:
                            next_frontiers.append(extended)
                frontiers = next_frontiers
                if not frontiers:
                    break
            for bindings in frontiers:
                head = deref(rule.head)
                if isinstance(head, Atom):
                    derived: GroundAtom = (head.name, ())
                else:
                    arguments = []
                    for argument in head.args:
                        argument = deref(argument)
                        if isinstance(argument, Var):
                            value = bindings.get(id(argument))
                            if value is None:
                                break  # unsafe rule: skip this derivation
                            arguments.append(value)
                        else:
                            arguments.append(_const_str(argument))
                    else:
                        derived = (head.name, tuple(arguments))
                        if derived not in model:
                            model.add(derived)
                            added = True
                        continue
                    continue
                if derived not in model:
                    model.add(derived)
                    added = True
        if not added:
            return model


def engine_model(database: Database) -> Set[GroundAtom]:
    """All derivable ground atoms per the SLD engine."""
    engine = Engine(database)
    atoms: Set[GroundAtom] = set()
    for name, arity in database.predicates():
        variables = ", ".join(f"V{i}" for i in range(arity))
        query = f"{name}({variables})" if arity else name
        for solution in engine.solve(query):
            values = tuple(
                str(solution.bindings[f"V{i}"]) for i in range(arity)
            )
            atoms.add((name, values))
    return atoms


class TestHandWritten:
    def test_transitive_closure(self):
        source = """
        edge(a, b). edge(b, c). edge(c, d).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- edge(X, Y), path(Y, Z).
        """
        database = Database.from_source(source)
        assert engine_model(database) == least_model(database)

    def test_layered_rules(self):
        source = """
        base(a). base(b).
        p(X) :- base(X).
        q(X) :- p(X), base(X).
        """
        database = Database.from_source(source)
        assert engine_model(database) == least_model(database)

    def test_cartesian_rule(self):
        source = """
        c(x). c(y).
        d(1). d(2).
        pair(A, B) :- c(A), d(B).
        """
        database = Database.from_source(source)
        assert engine_model(database) == least_model(database)


CONSTS = ["a", "b", "c"]


@st.composite
def datalog_programs(draw):
    """Random stratified, SLD-terminating Datalog: layered rules so the
    engine cannot left-recurse."""
    lines = []
    for name in ("e", "f"):
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            args = ", ".join(
                draw(st.sampled_from(CONSTS)) for _ in range(2)
            )
            lines.append(f"{name}({args}).")
    # Layer 1 rules use only facts; layer 2 may use layer 1. Rules are
    # kept *range-restricted* (head vars appear in the body): the first
    # goal always carries (X, Y), so every SLD answer is ground and
    # comparable to the least model.
    layer1 = draw(st.integers(min_value=1, max_value=2))
    for index in range(layer1):
        anchor = draw(st.sampled_from(["e", "f"]))
        goals = [f"{anchor}(X, Y)"]
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            predicate = draw(st.sampled_from(["e", "f"]))
            first = draw(st.sampled_from(["X", "Y"] + CONSTS[:1]))
            second = draw(st.sampled_from(["X", "Y"] + CONSTS[:1]))
            goals.append(f"{predicate}({first}, {second})")
        lines.append(f"r{index}(X, Y) :- {', '.join(goals)}.")
    goals = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        predicate = draw(st.sampled_from(["e", "f"] + [f"r{i}" for i in range(layer1)]))
        goals.append(f"{predicate}(X, Y)")
    lines.append(f"top(X, Y) :- {', '.join(goals)}.")
    return "\n".join(lines)


class TestRandomPrograms:
    @given(datalog_programs())
    @settings(max_examples=40, deadline=None)
    def test_engine_matches_least_model(self, source):
        database = Database.from_source(source)
        assert engine_model(database) == least_model(database), source

    @given(datalog_programs())
    @settings(max_examples=20, deadline=None)
    def test_reordered_matches_least_model(self, source):
        database = Database.from_source(source)
        reference = least_model(database)
        program = Reorderer(database).reorder()
        # Only check the original predicate names (dispatch entry points).
        reordered_atoms = {
            atom
            for atom in engine_model(program.database)
            if not atom[0].endswith(("_uu", "_ui", "_iu", "_ii"))
            and "_" not in atom[0][1:]
        }
        expected = {a for a in reference}
        assert reordered_atoms == expected, source
