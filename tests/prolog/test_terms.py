"""Unit tests for the term representation."""

import pytest

from repro.prolog.terms import (
    Atom,
    Struct,
    Var,
    copy_term,
    deref,
    functor_indicator,
    indicator_str,
    is_callable_term,
    is_list_cell,
    is_number,
    is_proper_list,
    iter_list,
    list_to_python,
    make_list,
    rename_term,
    structural_eq,
    term_is_ground,
    term_ordering_key,
    term_variables,
)


class TestAtom:
    def test_interned_identity(self):
        assert Atom("foo") is Atom("foo")

    def test_distinct_atoms(self):
        assert Atom("foo") is not Atom("bar")

    def test_str(self):
        assert str(Atom("hello")) == "hello"

    def test_hashable(self):
        assert {Atom("a"): 1}[Atom("a")] == 1

    def test_empty_name_allowed(self):
        assert Atom("").name == ""


class TestVar:
    def test_fresh_vars_distinct(self):
        assert Var() is not Var()

    def test_anonymous_gets_generated_name(self):
        assert Var().name.startswith("_G")

    def test_named(self):
        assert Var("X").name == "X"

    def test_initially_unbound(self):
        assert Var().ref is None


class TestStruct:
    def test_arity(self):
        s = Struct("f", (Atom("a"), Atom("b")))
        assert s.arity == 2

    def test_indicator(self):
        assert Struct("foo", (1,)).indicator == ("foo", 1)

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_args_become_tuple(self):
        s = Struct("f", [1, 2])
        assert isinstance(s.args, tuple)


class TestDeref:
    def test_unbound_var(self):
        v = Var()
        assert deref(v) is v

    def test_follows_chain(self):
        a, b = Var(), Var()
        a.ref = b
        b.ref = Atom("x")
        assert deref(a) is Atom("x")

    def test_non_var_identity(self):
        assert deref(Atom("a")) is Atom("a")
        assert deref(42) == 42


class TestPredicates:
    def test_is_number(self):
        assert is_number(1)
        assert is_number(1.5)
        assert not is_number(True)  # bool is not a Prolog number
        assert not is_number(Atom("a"))

    def test_is_callable(self):
        assert is_callable_term(Atom("a"))
        assert is_callable_term(Struct("f", (1,)))
        assert not is_callable_term(Var())
        assert not is_callable_term(3)


class TestLists:
    def test_make_empty(self):
        assert make_list([]) is Atom("[]")

    def test_roundtrip(self):
        items = [Atom("a"), 1, Struct("f", (Var(),))]
        assert list_to_python(make_list(items)) == items

    def test_is_list_cell(self):
        assert is_list_cell(make_list([1]))
        assert not is_list_cell(Atom("[]"))

    def test_improper_list_raises(self):
        open_list = make_list([1, 2], tail=Var())
        with pytest.raises(ValueError):
            list(iter_list(open_list))

    def test_is_proper_list(self):
        assert is_proper_list(make_list([1, 2]))
        assert not is_proper_list(make_list([1], tail=Var()))
        assert not is_proper_list(Atom("a"))

    def test_custom_tail(self):
        v = Var()
        lst = make_list([1], tail=v)
        assert deref(lst.args[1]) is v


class TestTermVariables:
    def test_order_of_first_occurrence(self):
        x, y = Var("X"), Var("Y")
        term = Struct("f", (x, Struct("g", (y, x))))
        assert term_variables(term) == [x, y]

    def test_skips_bound(self):
        x = Var("X")
        x.ref = Atom("a")
        assert term_variables(Struct("f", (x,))) == []
        x.ref = None

    def test_ground_term(self):
        assert term_variables(Struct("f", (1, Atom("a")))) == []


class TestGroundness:
    def test_ground(self):
        assert term_is_ground(Struct("f", (1, Atom("a"))))

    def test_not_ground(self):
        assert not term_is_ground(Struct("f", (Var(),)))

    def test_bound_var_counts_as_its_value(self):
        v = Var()
        v.ref = Atom("a")
        assert term_is_ground(v)
        v.ref = None


class TestRenameAndCopy:
    def test_copy_distinct_vars(self):
        x = Var("X")
        term = Struct("f", (x, x))
        copy = copy_term(term)
        assert copy.args[0] is copy.args[1]
        assert copy.args[0] is not x

    def test_copy_resolves_bindings(self):
        x = Var("X")
        x.ref = Atom("bound")
        copy = copy_term(Struct("f", (x,)))
        assert copy.args[0] is Atom("bound")
        x.ref = None

    def test_shared_mapping_consistent(self):
        x = Var("X")
        mapping = {}
        first = rename_term(x, mapping)
        second = rename_term(Struct("f", (x,)), mapping)
        assert second.args[0] is first


class TestStructuralEq:
    def test_atoms(self):
        assert structural_eq(Atom("a"), Atom("a"))
        assert not structural_eq(Atom("a"), Atom("b"))

    def test_numbers_type_sensitive(self):
        assert structural_eq(1, 1)
        assert not structural_eq(1, 1.0)

    def test_vars_by_identity(self):
        v = Var()
        assert structural_eq(v, v)
        assert not structural_eq(Var(), Var())

    def test_structs_recursive(self):
        assert structural_eq(Struct("f", (1, Atom("a"))), Struct("f", (1, Atom("a"))))
        assert not structural_eq(Struct("f", (1,)), Struct("f", (2,)))
        assert not structural_eq(Struct("f", (1,)), Struct("g", (1,)))

    def test_derefs_before_comparing(self):
        v = Var()
        v.ref = Atom("a")
        assert structural_eq(v, Atom("a"))
        v.ref = None


class TestStandardOrder:
    def test_var_before_number_before_atom_before_struct(self):
        keys = [
            term_ordering_key(Var()),
            term_ordering_key(3),
            term_ordering_key(Atom("z")),
            term_ordering_key(Struct("a", (1,))),
        ]
        assert keys == sorted(keys)

    def test_atoms_alphabetical(self):
        assert term_ordering_key(Atom("a")) < term_ordering_key(Atom("b"))

    def test_structs_by_arity_then_name(self):
        assert term_ordering_key(Struct("z", (1,))) < term_ordering_key(
            Struct("a", (1, 2))
        )


class TestIndicators:
    def test_atom(self):
        assert functor_indicator(Atom("foo")) == ("foo", 0)

    def test_struct(self):
        assert functor_indicator(Struct("bar", (1, 2))) == ("bar", 2)

    def test_number_raises(self):
        with pytest.raises(TypeError):
            functor_indicator(42)

    def test_indicator_str(self):
        assert indicator_str(("foo", 2)) == "foo/2"
