"""Property-based cut semantics checks.

There is no independent oracle for cut, but two strong invariants hold
against the cut-free version of any pure program:

* removing every cut can only *add* answers (cut prunes, never
  generates);
* the first answer is identical with and without cuts **when the cut
  is clause-final** (a trailing cut commits to bindings already made,
  so the first solution is untouched).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.prolog import Database, Engine

CONSTS = ["a", "b", "c"]


@st.composite
def cut_programs(draw):
    """Programs whose rules may end in a trailing cut."""
    lines = []
    for predicate in ("p", "q"):
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            args = ", ".join(draw(st.sampled_from(CONSTS)) for _ in range(2))
            lines.append(f"{predicate}({args}).")
    rule_count = draw(st.integers(min_value=1, max_value=3))
    for index in range(rule_count):
        goal_count = draw(st.integers(min_value=1, max_value=3))
        goals = []
        for _ in range(goal_count):
            predicate = draw(st.sampled_from(["p", "q"]))
            first = draw(st.sampled_from(["X", "Y"] + CONSTS[:1]))
            second = draw(st.sampled_from(["X", "Y"] + CONSTS[:1]))
            goals.append(f"{predicate}({first}, {second})")
        if draw(st.booleans()):
            goals.append("!")
        lines.append(f"r{index}(X, Y) :- {', '.join(goals)}.")
        # Possibly a second clause for the same rule.
        if draw(st.booleans()):
            lines.append(f"r{index}(X, Y) :- p(X, Y).")
    return "\n".join(lines)


def strip_cuts(source: str) -> str:
    return (
        source.replace(", !,", ",")
        .replace(", !.", ".")
        .replace(":- !,", ":-")
        .replace(":- !.", ":- true.")
    )


def answer_set(source, query):
    return [s.key() for s in Engine(Database.from_source(source)).ask(query)]


@given(cut_programs())
@settings(max_examples=50, deadline=None)
def test_cut_only_prunes(source):
    cutfree = strip_cuts(source)
    for index in range(3):
        query = f"r{index}(V0, V1)"
        database = Database.from_source(source)
        if not database.defines((f"r{index}", 2)):
            continue
        with_cut = set(answer_set(source, query))
        without_cut = set(answer_set(cutfree, query))
        assert with_cut <= without_cut, source


@given(cut_programs())
@settings(max_examples=50, deadline=None)
def test_trailing_cut_keeps_first_answer(source):
    cutfree = strip_cuts(source)
    for index in range(3):
        database = Database.from_source(source)
        if not database.defines((f"r{index}", 2)):
            continue
        query = f"r{index}(V0, V1)"
        with_cut = answer_set(source, query)
        without_cut = answer_set(cutfree, query)
        if without_cut:
            assert with_cut, source
            assert with_cut[0] == without_cut[0], source
        else:
            assert not with_cut, source
