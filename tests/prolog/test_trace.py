"""Tests for the four-port tracer."""

import pytest

from repro.prolog import Database, Engine
from repro.prolog.trace import CollectingTracer
from repro.reorder.system import ReorderOptions, Reorderer

SOURCE = """
p(1). p(2).
q(2).
r(X) :- p(X), q(X).
"""


def traced_engine(source=SOURCE, **tracer_kwargs):
    engine = Engine.from_source(source)
    tracer = CollectingTracer(**tracer_kwargs)
    engine.tracer = tracer
    return engine, tracer


class TestPorts:
    def test_simple_success(self):
        engine, tracer = traced_engine("f(a).")
        engine.ask("f(a)")
        assert tracer.ports() == ["call", "exit", "redo", "fail"]

    def test_simple_failure(self):
        engine, tracer = traced_engine("f(a).")
        engine.ask("f(b)")
        assert tracer.ports() == ["call", "fail"]

    def test_conjunction_boxes_nest(self):
        engine, tracer = traced_engine()
        engine.ask("r(2)")
        r_events = [e for e in tracer.events if e.goal_text.startswith("r(")]
        assert [e.port for e in r_events] == ["call", "exit", "redo", "fail"]

    def test_exit_shows_bindings(self):
        engine, tracer = traced_engine()
        engine.ask("p(X)", limit=1)
        exits = tracer.lines("exit")
        assert "p(1)" in exits

    def test_redo_on_backtracking(self):
        engine, tracer = traced_engine()
        engine.ask("p(X)")  # both answers forced
        p_ports = [e.port for e in tracer.events if "p(" in e.goal_text]
        assert p_ports == ["call", "exit", "redo", "exit", "redo", "fail"]

    def test_depth_increases_for_subgoals(self):
        engine, tracer = traced_engine()
        engine.ask("r(X)", limit=1)
        r_depth = next(e.depth for e in tracer.events if "r(" in e.goal_text)
        p_depth = next(e.depth for e in tracer.events if "p(" in e.goal_text)
        assert p_depth > r_depth

    def test_builtins_traced(self):
        engine, tracer = traced_engine("calc(X) :- X is 1 + 2.")
        engine.ask("calc(V)")
        assert any("is" in text for text in tracer.lines("call"))


class TestCollectingTracer:
    def test_limit(self):
        engine, tracer = traced_engine(limit=3)
        engine.ask("r(X)")
        assert len(tracer.events) == 3

    def test_predicate_filter(self):
        engine, tracer = traced_engine(only_predicates={"q"})
        engine.ask("r(X)")
        assert tracer.events
        assert all(e.goal_text.startswith("q(") for e in tracer.events)

    def test_format_indents(self):
        engine, tracer = traced_engine()
        engine.ask("r(2)")
        text = tracer.format()
        assert "call  r(2)" in text
        assert "  call  p(2)" in text

    def test_not_truncated_below_limit(self):
        engine, tracer = traced_engine()
        engine.ask("r(X)")
        assert not tracer.truncated and tracer.dropped == 0
        assert "dropped" not in tracer.format()

    def test_truncation_counts_overflow(self):
        engine, tracer = traced_engine(limit=3)
        engine.ask("r(X)")
        assert tracer.truncated
        assert tracer.dropped > 0
        assert len(tracer.events) == 3

    def test_format_surfaces_overflow(self):
        engine, tracer = traced_engine(limit=3)
        engine.ask("r(X)")
        text = tracer.format()
        assert f"{tracer.dropped} more event(s) dropped" in text
        assert "(limit 3)" in text

    def test_filtered_events_not_counted_as_dropped(self):
        # Events rejected by the predicate filter are not "dropped":
        # only events that *matched* but overflowed the limit count.
        engine, tracer = traced_engine(only_predicates={"q"}, limit=100)
        engine.ask("r(X)")
        assert tracer.dropped == 0 and not tracer.truncated

    def test_filter_applies_before_limit(self):
        engine, tracer = traced_engine(only_predicates={"q"}, limit=1)
        engine.ask("r(X)")
        assert len(tracer.events) == 1
        assert tracer.events[0].goal_text.startswith("q(")
        assert tracer.dropped > 0

    def test_format_empty_truncated_trace(self):
        engine, tracer = traced_engine(limit=0)
        engine.ask("r(X)")
        assert tracer.events == []
        assert tracer.format().startswith("...")


class TestTraceAsOrderOracle:
    def test_reordered_program_traces_new_order(self):
        source = """
        wide(1). wide(2). wide(3). wide(4).
        narrow(3).
        both(X) :- wide(X), narrow(X).
        """
        program = Reorderer(
            Database.from_source(source), ReorderOptions(specialize=False)
        ).reorder()
        engine = program.engine()
        tracer = CollectingTracer(only_predicates={"wide", "narrow"})
        engine.tracer = tracer
        engine.ask("both(X)", limit=1)
        calls = tracer.lines("call")
        assert calls[0].startswith("narrow")  # the reordered first goal
