"""Unit tests for the clause-compilation layer (repro.prolog.compile).

The skeleton contracts the engine's hot loop relies on: dense slot
numbering, ground-subterm sharing (identity, not equality), lazy body
materialization, trail discipline of ``unify_head``, head fingerprints,
and the database's generation-counter cache invalidation.
"""

from repro.prolog import (
    Atom,
    Database,
    Struct,
    Trail,
    Var,
    compile_clause,
    first_arg_key,
    flatten_conjunction,
    parse_term,
    split_clause,
)
from repro.prolog.compile import CompiledClause
from repro.prolog.terms import deref


def compiled(text):
    head, body = split_clause(parse_term(text))
    return CompiledClause(head, body)


class TestFlattenConjunction:
    def test_nested_chain(self):
        goals = flatten_conjunction(parse_term("(a, b), (c, (d, e))"))
        assert [g.name for g in goals] == ["a", "b", "c", "d", "e"]

    def test_single_goal(self):
        goals = flatten_conjunction(parse_term("foo(X)"))
        assert len(goals) == 1 and goals[0].name == "foo"

    def test_disjunction_not_flattened(self):
        goals = flatten_conjunction(parse_term("a, (b ; c), d"))
        assert [getattr(g, "name", None) for g in goals] == ["a", ";", "d"]

    def test_derefs_bound_variable(self):
        var = Var("G")
        var.ref = Struct(",", (Atom("a"), Atom("b")))
        goals = flatten_conjunction(var)
        assert [g.name for g in goals] == ["a", "b"]


class TestSkeletonShape:
    def test_fact_head_is_shared_not_copied(self):
        clause = compiled("rec(1, v1)")
        assert clause.var_names == ()
        assert clause.goals == ()
        # Ground arguments are stored as-is and reused every attempt.
        tags = [tag for tag, _ in clause.head_args]
        assert tags == [1, 1]  # _ARG_CONST

    def test_dense_slots_shared_between_head_and_body(self):
        clause = compiled("p(X, Y) :- q(Y, X, Z)")
        assert clause.var_names == ("X", "Y", "Z")

    def test_repeated_head_variable_uses_slot_spec(self):
        clause = compiled("same(X, X)")
        tags = [tag for tag, _ in clause.head_args]
        assert tags == [0, 2]  # _ARG_FRESH then _ARG_SLOT

    def test_true_body_goals_dropped(self):
        clause = compiled("p(X) :- true, q(X), true")
        assert len(clause.goals) == 1

    def test_head_key_matches_database_fingerprint(self):
        clause = compiled("rec(foo, X) :- q(X)")
        assert clause.head_key == first_arg_key(Atom("foo"))
        assert compiled("p(X) :- q(X)").head_key is None
        assert compiled("p :- q").head_key is None


class TestUnifyHead:
    def test_success_returns_frame(self):
        clause = compiled("p(X, c) :- q(X)")
        trail = Trail()
        frame = clause.unify_head((Atom("a"), Atom("c")), trail)
        assert frame is not None
        assert deref(frame[0]) == Atom("a")

    def test_failure_leaves_bindings_for_caller_undo(self):
        clause = compiled("p(X, c) :- q(X)")
        trail = Trail()
        goal_var = Var("G")
        mark = trail.mark()
        frame = clause.unify_head((goal_var, Atom("d")), trail)
        assert frame is None
        # The fresh-arg bind before the mismatch is still trailed —
        # identical discipline to a failed plain unify.
        trail.undo_to(mark)
        assert goal_var.ref is None

    def test_unbound_goal_variable_binds_to_fresh_slot(self):
        clause = compiled("p(X) :- q(X)")
        trail = Trail()
        goal_var = Var("G")
        frame = clause.unify_head((goal_var,), trail)
        assert goal_var.ref is frame[0]

    def test_ground_fact_attempt_allocates_nothing(self):
        clause = compiled("rec(1, v1)")
        frame = clause.unify_head((1, Atom("v1")), Trail())
        assert frame == ()


class TestMaterializeBody:
    def test_ground_goal_is_shared_identity(self):
        clause = compiled("p(X) :- q(a, b), r(X)")
        trail = Trail()
        frame = clause.unify_head((Atom("z"),), trail)
        first = clause.materialize_body(frame)
        second = clause.materialize_body(frame)
        assert first[0] is second[0]  # shared ground goal
        assert first[1] is not second[1]  # rebuilt per call

    def test_nonground_goal_uses_frame_variables(self):
        clause = compiled("p(X) :- q(f(X, g(X)))")
        trail = Trail()
        frame = clause.unify_head((Var("C"),), trail)
        [goal] = clause.materialize_body(frame)
        inner = goal.args[0]
        assert inner.args[0] is frame[0]
        assert inner.args[1].args[0] is frame[0]

    def test_nested_ground_subterm_shared_inside_nonground(self):
        clause = compiled("p(X) :- q(X, big(ground, term))")
        [code_const] = clause.goals
        trail = Trail()
        frame = clause.unify_head((Var("C"),), trail)
        first = clause.materialize_body(frame)[0]
        second = clause.materialize_body(frame)[0]
        assert first.args[1] is second.args[1]


class TestDatabaseCache:
    def test_compiled_program_parallel_to_clauses(self):
        database = Database.from_source("p(1).\np(2) :- q.\nq.")
        program = database.compiled_program(("p", 1))
        assert len(program) == 2
        assert all(isinstance(c, CompiledClause) for c in program)

    def test_cache_reused_within_generation(self):
        database = Database.from_source("p(1).")
        assert database.compiled_program(("p", 1)) is database.compiled_program(
            ("p", 1)
        )

    def test_mutation_invalidates_wholesale(self):
        database = Database.from_source("p(1).")
        before = database.compiled_program(("p", 1))
        from repro.prolog import Clause
        database.add_clause(Clause(parse_term("p(2)"), Atom("true")))
        after = database.compiled_program(("p", 1))
        assert after is not before
        assert len(after) == 2

    def test_compile_clause_helper(self):
        database = Database.from_source("p(X) :- q(X).")
        [clause] = database.clauses(("p", 1))
        skeleton = compile_clause(clause)
        assert skeleton.var_names == ("X",)
