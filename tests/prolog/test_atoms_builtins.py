"""Unit tests for atom-text and sorting builtins."""

import pytest

from repro.errors import InstantiationError, TypeErrorProlog
from repro.prolog import Engine


def engine(source="", **kwargs):
    return Engine.from_source(source, **kwargs)


def one(eng, query, var):
    (solution,) = eng.ask(query)
    return str(solution[var])


class TestAtomCodes:
    def test_atom_to_codes(self):
        assert one(engine(), "atom_codes(abc, L)", "L") == "[97, 98, 99]"

    def test_codes_to_atom(self):
        assert one(engine(), 'atom_codes(A, "hi")', "A") == "hi"

    def test_number_first_arg(self):
        assert one(engine(), "atom_codes(12, L)", "L") == "[49, 50]"

    def test_check_mode(self):
        assert engine().succeeds('atom_codes(hi, "hi")')
        assert not engine().succeeds('atom_codes(hi, "ho")')


class TestNumberCodes:
    def test_number_to_codes(self):
        assert one(engine(), "number_codes(42, L)", "L") == "[52, 50]"

    def test_codes_to_int(self):
        assert one(engine(), 'number_codes(N, "42")', "N") == "42"

    def test_codes_to_float(self):
        assert one(engine(), 'number_codes(N, "2.5")', "N") == "2.5"

    def test_non_numeric_raises(self):
        with pytest.raises(TypeErrorProlog):
            engine().succeeds('number_codes(N, "abc")')


class TestName:
    def test_atom(self):
        assert one(engine(), "name(foo, L), atom_codes(A, L)", "A") == "foo"

    def test_parses_number(self):
        assert one(engine(), 'name(X, "42")', "X") == "42"
        (solution,) = engine().ask('name(X, "42")')
        assert solution["X"].__class__ is int

    def test_falls_back_to_atom(self):
        assert one(engine(), 'name(X, "a1")', "X") == "a1"


class TestAtomLength:
    def test_length(self):
        assert one(engine(), "atom_length(hello, N)", "N") == "5"

    def test_unbound_raises(self):
        with pytest.raises(InstantiationError):
            engine().succeeds("atom_length(A, 3)")

    def test_non_atom_raises(self):
        with pytest.raises(TypeErrorProlog):
            engine().succeeds("atom_length(42, N)")


class TestSorting:
    def test_msort_keeps_duplicates(self):
        assert one(engine(), "msort([b, a, c, a], L)", "L") == "[a, a, b, c]"

    def test_sort_removes_duplicates(self):
        assert one(engine(), "sort([b, a, c, a], L)", "L") == "[a, b, c]"

    def test_sort_standard_order(self):
        assert one(engine(), "sort([foo, 2, f(1), 1], L)", "L") == "[1, 2, foo, f(1)]"

    def test_keysort_stable(self):
        result = one(
            engine(), "keysort([b - 1, a - 2, b - 3, a - 4], L)", "L"
        )
        assert result == "[a - 2, a - 4, b - 1, b - 3]"

    def test_keysort_requires_pairs(self):
        with pytest.raises(TypeErrorProlog):
            engine().succeeds("keysort([a], L)")

    def test_open_list_raises(self):
        with pytest.raises(InstantiationError):
            engine().succeeds("sort([a | T], L)")
