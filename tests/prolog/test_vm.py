"""Bytecode VM unit tests: the trampoline's own guarantees.

The three-way differential suite (`test_compiled_differential.py`)
pins answers and counters against the generator oracles; this file
covers what only the machine can promise — constant Python stack
depth, plain-data (picklable) choice points, deterministic `close()`,
budget aborts from inside the trampoline, and the disassembler.
"""

import pickle
import sys

import pytest

from repro.errors import BudgetExceededError, DepthLimitExceeded, ExistenceError
from repro.prolog import Engine, Struct, Var
from repro.prolog.compile import VM_BUILTIN, VM_CALL, VM_CUT, VM_DET, VM_GENERIC
from repro.prolog.vm import (
    DET_BUILTINS,
    Machine,
    disassemble_database,
    disassemble_predicate,
)
from repro.robustness.budget import Budget

COUNTDOWN = """
    count(0).
    count(N) :- N > 0, M is N - 1, count(M).
"""

MEMBER = """
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
"""


class TestTrampolineDepth:
    def test_deep_recursion_without_python_stack(self):
        """20k-deep SLD recursion on a few hundred Python frames.

        The generator ladder needs a Python frame per depth level (the
        engine raises the interpreter recursion limit to cope); the
        machine's depth is data on the choice-point stack.
        """
        engine = Engine.from_source(
            COUNTDOWN, vm=True, max_depth=30_000, adjust_recursion_limit=False
        )
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(500)
        try:
            assert len(engine.ask("count(20000)")) == 1
        finally:
            sys.setrecursionlimit(limit)

    def test_depth_limit_still_enforced(self):
        engine = Engine.from_source(
            "spin :- spin.", vm=True, max_depth=50
        )
        with pytest.raises(DepthLimitExceeded):
            engine.ask("spin")

    def test_undefined_predicate_raises(self):
        engine = Engine.from_source("p(a).", vm=True)
        with pytest.raises(ExistenceError):
            engine.ask("missing(X)")


class TestChoicePointData:
    def test_cp_stack_is_picklable_mid_enumeration(self):
        engine = Engine.from_source("p(X) :- q(X). q(1). q(2). q(3).", vm=True)
        machine = Machine(engine, Struct("p", (Var("X"),)), ("p", 1), 0)
        try:
            assert machine.next_solution()
            assert machine.cps, "expected a live choice point"
            restored = pickle.loads(pickle.dumps(machine.cps))
            assert [cp[0] for cp in restored] == [cp[0] for cp in machine.cps]
        finally:
            machine.close()

    def test_close_is_idempotent_and_final(self):
        engine = Engine.from_source("q(1). q(2).", vm=True)
        machine = Machine(engine, Struct("q", (Var("X"),)), ("q", 1), 0)
        assert machine.next_solution()
        machine.close()
        machine.close()
        assert not machine.next_solution()
        assert machine.cps == []

    def test_close_preserves_committed_bindings(self):
        """Cut-committed bindings survive cleanup (the answer is read
        off the trail after the machine is discarded)."""
        engine = Engine.from_source(
            MEMBER + "first(X) :- member(X, [a, b, c]), !.", vm=True
        )
        solutions = engine.ask("first(X)")
        assert [str(s.bindings["X"]) for s in solutions] == ["a"]


class TestBudgetsOnVmPath:
    @pytest.mark.parametrize(
        "query",
        [
            "first(X)",                      # cut
            "pick(X)",                       # if-then-else
            "lonely(9)",                     # negation as failure
        ],
    )
    def test_step_budget_aborts_control_constructs(self, query):
        source = MEMBER + """
            first(X) :- member(X, [a, b, c]), !.
            pick(X) :- (member(X, [1, 2]) -> true ; X = none).
            lonely(X) :- \\+ member(X, [1, 2, 3]).
        """
        engine = Engine.from_source(source, vm=True)
        with pytest.raises(BudgetExceededError):
            engine.ask(query, budget=Budget(steps=2))
        # The abort unwound the trail; the engine stays usable.
        assert engine.trail.mark() == 0
        assert len(engine.ask(query)) >= 1

    def test_call_budget_trips_inside_machine(self):
        engine = Engine.from_source(COUNTDOWN, vm=True, max_depth=5000)
        with pytest.raises(BudgetExceededError):
            engine.ask("count(1000)", budget=Budget(calls=50))
        assert engine.trail.mark() == 0


class TestAskLimitUnwind:
    def test_limit_pops_the_whole_stack(self):
        engine = Engine.from_source(MEMBER, vm=True)
        solutions = engine.ask("member(X, [a, b, c, d])", limit=2)
        assert len(solutions) == 2
        assert engine.trail.mark() == 0
        # Fresh enumeration still sees every answer.
        assert len(engine.ask("member(X, [a, b, c, d])")) == 4


class TestBytecodeShape:
    def test_goal_classification(self):
        source = """
            body(X, Y) :- q(X), Y is X + 1, Y > 0, !, (q(Y) ; true).
            q(1).
        """
        engine = Engine.from_source(source, vm=True)
        program = engine.database.compiled_program(("body", 2))
        tags = [op[0] for op in program[0].vm_code()]
        assert tags == [VM_CALL, VM_DET, VM_DET, VM_CUT, VM_GENERIC]

    def test_nondet_builtin_stays_delegated(self):
        engine = Engine.from_source("up(X) :- between(1, 3, X).", vm=True)
        program = engine.database.compiled_program(("up", 1))
        assert [op[0] for op in program[0].vm_code()] == [VM_BUILTIN]
        assert [str(s.bindings["X"]) for s in engine.ask("up(X)")] == [
            "1", "2", "3"
        ]

    def test_det_table_covers_hot_builtins(self):
        for indicator in [("is", 2), ("=", 2), ("<", 2), ("==", 2)]:
            assert indicator in DET_BUILTINS


class TestDisassembler:
    def test_predicate_listing(self):
        engine = Engine.from_source(COUNTDOWN, vm=True)
        text = "\n".join(disassemble_predicate(engine.database, ("count", 1)))
        assert "count/1 (2 clauses)" in text
        assert "DET_BUILTIN  is/2" in text
        assert "CALL         count/1" in text
        assert "PROCEED" in text

    def test_database_listing_covers_every_predicate(self):
        engine = Engine.from_source("a. b :- a.", vm=True)
        text = disassemble_database(engine.database)
        assert "% a/0" in text and "% b/0" in text
