"""Multi-argument indexing and bulk scan plans.

The database's ``index_argument="multi"`` default builds per-position
clause buckets lazily and answers each call from the most selective
bound position; the engine's scan plans bulk-skip fingerprint-rejected
clauses on unnarrowed scans. Both are pure speedups: the engine's
deterministic counters (the paper's cost-model currency) must be
byte-identical with them on, off, or mixed — which is what these tests
pin, along with the ``IndexEvent`` position/selectivity telemetry.
"""

from repro.observability import attach
from repro.prolog import Database, Engine, parse_term
from repro.prolog.database import Clause
from repro.prolog.terms import Atom

SOURCE = """
rec(a, one, x).
rec(b, one, y).
rec(c, two, x).
rec(d, two, y).
rec(e, three, x).
"""

COUNTERS = (
    "calls",
    "unifications",
    "clause_entries",
    "backtracks",
    "head_fast_rejects",
)


def counters_for(source, query, **db_kwargs):
    engine = Engine(Database.from_source(source, **db_kwargs))
    solutions = engine.ask(query)
    return (
        {s.key() for s in solutions},
        {key: getattr(engine.metrics, key) for key in COUNTERS},
    )


class TestMultiArgumentSelection:
    def test_second_position_narrows(self):
        database = Database.from_source(SOURCE)
        assert database.index_argument == "multi"
        clauses = database.matching_clauses(parse_term("rec(X, two, Y)"))
        assert len(clauses) == 2

    def test_most_selective_position_wins(self):
        database = Database.from_source(SOURCE)
        # Position 0 narrows to 1 clause, position 2 to 3: position 0
        # must win when both are bound.
        clauses = database.matching_clauses(parse_term("rec(a, M, x)"))
        assert len(clauses) == 1

    def test_unbound_call_scans(self):
        database = Database.from_source(SOURCE)
        assert len(database.matching_clauses(parse_term("rec(X, Y, Z)"))) == 5

    def test_variable_headed_clauses_survive_every_probe(self):
        database = Database.from_source(SOURCE + "rec(V, wild, W).\n")
        clauses = database.matching_clauses(parse_term("rec(a, M, x)"))
        # The var-headed clause can match any key: it must come back
        # alongside the position-0 bucket's single match.
        assert len(clauses) == 2
        seconds = [clause.head.args[1] for clause in clauses]
        assert any(
            isinstance(arg, Atom) and arg.name == "wild" for arg in seconds
        )

    def test_mutation_invalidates_buckets(self):
        database = Database.from_source(SOURCE)
        assert len(database.matching_clauses(parse_term("rec(X, two, Y)"))) == 2
        database.add_clause(
            Clause(parse_term("rec(f, two, z)"), Atom("true"))
        )
        assert len(database.matching_clauses(parse_term("rec(X, two, Y)"))) == 3


class TestCounterNeutrality:
    """Indexing modes and scan plans may never change the charges."""

    def test_multi_vs_first_argument_calls_identical(self):
        # `calls` is the reorderer's currency: identical under any
        # index mode (narrowing changes tries, never calls).
        query = "rec(X, two, Y)"
        answers_multi, multi = counters_for(SOURCE, query)
        answers_first, first = counters_for(SOURCE, query, index_argument=1)
        assert answers_multi == answers_first
        assert multi["calls"] == first["calls"]

    def test_scan_plans_byte_identical_counters(self):
        source = "\n".join(f"edge({i}, {(i + 1) % 200})." for i in range(200))
        source += "\njoin(A, C) :- edge(A, B), edge(B, C).\n"
        for query in ("join(1, C)", "edge(5, X)", "edge(X, 5)"):
            answers_plan, plan = counters_for(source, query, indexing=False)
            answers_loop, loop = counters_for(
                source, query, indexing=False, scan_plans=False
            )
            assert answers_plan == answers_loop
            assert plan == loop, f"counter drift on {query!r}"

    def test_scan_plans_counters_match_under_early_close(self):
        # The bulk sentinel charge must behave exactly like the old
        # loop when the consumer stops at the first answer.
        source = "\n".join(f"d({i})." for i in range(50))
        for scan_plans in (True, False):
            engine = Engine(
                Database.from_source(
                    source, indexing=False, scan_plans=scan_plans
                )
            )
            engine.ask("d(25)", limit=1)
            if scan_plans:
                reference = engine.metrics.unifications
            else:
                assert engine.metrics.unifications == reference


class TestIndexEvents:
    def test_hit_event_carries_position_and_selectivity(self):
        engine = Engine.from_source(SOURCE)
        bus = attach(engine)
        engine.ask("rec(X, two, Y)")
        hits = [e for e in bus.by_kind("index") if e.hit]
        assert hits
        event = hits[0]
        assert event.position == 1
        assert event.selectivity == 2 / 5
        record = event.to_record()
        assert record["position"] == 1

    def test_unbound_call_reports_miss(self):
        engine = Engine.from_source(SOURCE)
        bus = attach(engine)
        engine.ask("rec(X, Y, Z)")
        misses = [e for e in bus.by_kind("index") if not e.hit]
        assert misses and misses[0].position is None
