"""Conformance corpus: classic Prolog programs with known answers.

Each case is a small canonical program and the exact answers standard
Prolog produces. This is the broadest behavioural net over the engine:
list processing, arithmetic recursion, generate-and-test, accumulator
idioms, cuts, negation, meta-predicates, and two classic puzzles.
"""

import pytest

from repro.prolog import Engine

LIB = """
append([], Xs, Xs).
append([X | Xs], Ys, [X | Zs]) :- append(Xs, Ys, Zs).
member(X, [X | _]).
member(X, [_ | Xs]) :- member(X, Xs).
select(X, [X | Xs], Xs).
select(X, [Y | Xs], [Y | Ys]) :- select(X, Xs, Ys).
"""


def answers(source, query, var=None, **kwargs):
    engine = Engine.from_source(source, **kwargs)
    solutions = engine.ask(query)
    if var is None:
        return solutions
    return [str(s[var]) for s in solutions]


class TestListClassics:
    def test_append_forward(self):
        assert answers(LIB, "append([1, 2], [3, 4], L)", "L") == ["[1, 2, 3, 4]"]

    def test_append_backward_splits(self):
        engine = Engine.from_source(LIB)
        splits = [
            (str(s["A"]), str(s["B"])) for s in engine.ask("append(A, B, [1, 2])")
        ]
        assert splits == [
            ("[]", "[1, 2]"), ("[1]", "[2]"), ("[1, 2]", "[]"),
        ]

    def test_naive_reverse(self):
        source = LIB + """
        nrev([], []).
        nrev([X | Xs], R) :- nrev(Xs, T), append(T, [X], R).
        """
        assert answers(source, "nrev([1, 2, 3, 4], R)", "R") == ["[4, 3, 2, 1]"]

    def test_accumulator_reverse(self):
        source = """
        rev(Xs, Ys) :- rev_(Xs, [], Ys).
        rev_([], A, A).
        rev_([X | Xs], A, Ys) :- rev_(Xs, [X | A], Ys).
        """
        assert answers(source, "rev([a, b, c], R)", "R") == ["[c, b, a]"]

    def test_last_via_append(self):
        assert answers(LIB, "append(_, [X], [1, 2, 3])", "X") == ["3"]

    def test_sublist_enumeration(self):
        source = LIB + "sublist(S, L) :- append(_, T, L), append(S, _, T)."
        engine = Engine.from_source(source)
        count = engine.count_solutions("sublist(S, [a, b, c])")
        assert count == 10  # includes duplicates of [] per position

    def test_delete_all_modes(self):
        source = """
        del(X, [X | Y], Y).
        del(U, [X | Y], [X | V]) :- del(U, Y, V).
        """
        assert answers(source, "del(2, [1, 2, 3], R)", "R") == ["[1, 3]"]
        assert answers(source, "del(X, [1, 2], R)", "X") == ["1", "2"]
        # Insertion mode: delete(X, L, [a]) inserts X into [a].
        engine = Engine.from_source(source)
        assert engine.count_solutions("del(x, L, [a])") == 2


class TestArithmeticRecursion:
    def test_factorial(self):
        source = """
        fact(0, 1).
        fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
        """
        assert answers(source, "fact(6, F)", "F") == ["720"]

    def test_fibonacci(self):
        source = """
        fib(0, 0). fib(1, 1).
        fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                     fib(A, FA), fib(B, FB), F is FA + FB.
        """
        assert answers(source, "fib(12, F)", "F") == ["144"]

    def test_gcd(self):
        source = """
        gcd(X, 0, X) :- X > 0.
        gcd(X, Y, G) :- Y > 0, Z is X mod Y, gcd(Y, Z, G).
        """
        assert answers(source, "gcd(48, 18, G)", "G") == ["6"]

    def test_length_acc(self):
        source = """
        len([], 0).
        len([_ | T], N) :- len(T, M), N is M + 1.
        """
        assert answers(source, "len([a, b, c, d, e], N)", "N") == ["5"]

    def test_sum_list(self):
        source = """
        suml([], 0).
        suml([X | Xs], S) :- suml(Xs, T), S is X + T.
        """
        assert answers(source, "suml([10, 20, 12], S)", "S") == ["42"]

    def test_between_generate_and_test(self):
        assert answers("", "between(1, 20, X), 0 =:= X mod 7", "X") == ["7", "14"]


class TestCutsAndNegation:
    def test_max_with_cut(self):
        source = "max_(X, Y, X) :- X >= Y, !. max_(_, Y, Y)."
        assert answers(source, "max_(3, 7, M)", "M") == ["7"]
        assert answers(source, "max_(9, 2, M)", "M") == ["9"]

    def test_not_member(self):
        source = LIB
        engine = Engine.from_source(source)
        assert engine.succeeds("\\+ member(5, [1, 2, 3])")
        assert not engine.succeeds("\\+ member(2, [1, 2, 3])")

    def test_once_member(self):
        assert answers(LIB, "once(member(X, [a, b, c]))", "X") == ["a"]

    def test_if_then_else_sign(self):
        source = """
        sign_(X, pos) :- X > 0, !.
        sign_(X, neg) :- X < 0, !.
        sign_(_, zero).
        """
        assert answers(source, "sign_(-3, S)", "S") == ["neg"]
        assert answers(source, "sign_(0, S)", "S") == ["zero"]

    def test_soft_committed_choice(self):
        source = "classify(X, small) :- (X < 10 -> true ; fail). classify(X, big) :- X >= 10."
        assert answers(source, "classify(3, C)", "C") == ["small"]
        assert answers(source, "classify(30, C)", "C") == ["big"]


class TestMetaPredicates:
    def test_findall_squares(self):
        assert answers(
            "", "findall(S, (between(1, 4, N), S is N * N), L)", "L"
        ) == ["[1, 4, 9, 16]"]

    def test_setof_dedup_sorted(self):
        source = "c(3). c(1). c(3). c(2)."
        assert answers(source, "setof(X, c(X), L)", "L") == ["[1, 2, 3]"]

    def test_bagof_groups(self):
        source = "age(tom, 5). age(ann, 5). age(pat, 8)."
        engine = Engine.from_source(source)
        groups = engine.ask("bagof(P, age(P, A), L)")
        assert len(groups) == 2

    def test_aggregate_via_findall_length(self):
        source = "c(a). c(b). c(c)."
        assert answers(source, "findall(X, c(X), L), length(L, N)", "N") == ["3"]


class TestFourQueens:
    SOURCE = LIB + """
    queens(Qs) :- permutation_([1, 2, 3, 4], Qs), safe(Qs).
    permutation_([], []).
    permutation_(Xs, [X | Ys]) :- select(X, Xs, Zs), permutation_(Zs, Ys).
    safe([]).
    safe([Q | Qs]) :- no_attack(Q, Qs, 1), safe(Qs).
    no_attack(_, [], _).
    no_attack(Q, [Q1 | Qs], D) :-
        Q =\\= Q1 + D, Q =\\= Q1 - D, D1 is D + 1, no_attack(Q, Qs, D1).
    """

    def test_two_solutions(self):
        engine = Engine.from_source(self.SOURCE)
        boards = [str(s["Qs"]) for s in engine.ask("queens(Qs)")]
        assert boards == ["[2, 4, 1, 3]", "[3, 1, 4, 2]"]


class TestMiniZebra:
    """A three-house zebra-style puzzle with a unique solution."""

    SOURCE = LIB + """
    puzzle(Houses) :-
        Houses = [house(_, _, _), house(_, _, _), house(_, _, _)],
        member(house(red, ana, _), Houses),
        member(house(_, ben, dog), Houses),
        Houses = [house(_, _, cat) | _],
        next_to(house(green, _, _), house(red, _, _), Houses),
        member(house(blue, _, _), Houses),
        member(house(_, cal, _), Houses),
        Houses = [_, _, house(_, _, fish)].
    next_to(A, B, [A, B | _]).
    next_to(A, B, [_ | T]) :- next_to(A, B, T).
    """

    def test_unique_solution(self):
        engine = Engine.from_source(self.SOURCE, call_budget=2_000_000)
        solutions = {str(s["H"]) for s in engine.ask("puzzle(H)")}
        assert len(solutions) == 1
        (solution,) = solutions
        assert "house(blue, cal, cat)" in solution
        assert "house(green, ben, dog)" in solution
        assert "house(red, ana, fish)" in solution
