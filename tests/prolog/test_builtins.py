"""Unit tests for the builtin predicates."""

import pytest

from repro.errors import (
    ArithmeticErrorProlog,
    InstantiationError,
    TypeErrorProlog,
)
from repro.prolog import Engine
from repro.prolog.builtins import BUILTINS, is_builtin, is_control, lookup
from repro.prolog.builtins.lists import LIST_LIBRARY
from repro.prolog.terms import Atom


def engine(source="", **kwargs):
    return Engine.from_source(source, **kwargs)


def one(eng, query, var):
    (solution,) = eng.ask(query)
    return str(solution[var])


class TestRegistry:
    def test_core_builtins_registered(self):
        for indicator in [("is", 2), ("=", 2), ("var", 1), ("functor", 3),
                          ("write", 1), ("findall", 3), ("\\+", 1)]:
            assert is_builtin(indicator)
            assert lookup(indicator) is not None

    def test_control_indicators(self):
        assert is_control((",", 2))
        assert is_control(("!", 0))
        assert not is_control(("foo", 1))

    def test_side_effect_flags(self):
        assert BUILTINS[("write", 1)].side_effect
        assert BUILTINS[("nl", 0)].side_effect
        assert not BUILTINS[("is", 2)].side_effect

    def test_semifixed_flags(self):
        assert BUILTINS[("var", 1)].semifixed
        assert BUILTINS[("\\+", 1)].semifixed
        assert not BUILTINS[("=", 2)].semifixed


class TestArithmetic:
    def test_is_basic(self):
        assert one(engine(), "X is 2 + 3 * 4", "X") == "14"

    def test_is_division(self):
        assert one(engine(), "X is 7 // 2", "X") == "3"
        assert one(engine(), "X is -7 // 2", "X") == "-3"  # truncate toward 0
        assert one(engine(), "X is 7 mod 3", "X") == "1"

    def test_float_arith(self):
        assert one(engine(), "X is 1 / 2", "X") == "0.5"

    def test_functions(self):
        assert one(engine(), "X is abs(-4)", "X") == "4"
        assert one(engine(), "X is max(2, 5)", "X") == "5"
        assert one(engine(), "X is truncate(3.9)", "X") == "3"

    def test_is_checks_value(self):
        assert engine().succeeds("5 is 2 + 3")
        assert not engine().succeeds("6 is 2 + 3")

    def test_unbound_expression_raises(self):
        with pytest.raises(InstantiationError):
            engine().succeeds("X is Y + 1")

    def test_division_by_zero(self):
        with pytest.raises(ArithmeticErrorProlog):
            engine().succeeds("X is 1 // 0")

    def test_unknown_function(self):
        with pytest.raises(ArithmeticErrorProlog):
            engine().succeeds("X is frobnicate(3)")

    def test_comparisons(self):
        eng = engine()
        assert eng.succeeds("1 < 2")
        assert eng.succeeds("2 =< 2")
        assert eng.succeeds("3 =:= 3.0")
        assert eng.succeeds("3 =\\= 4")
        assert not eng.succeeds("2 > 2")

    def test_succ(self):
        assert one(engine(), "succ(3, X)", "X") == "4"
        assert one(engine(), "succ(X, 4)", "X") == "3"
        assert not engine().succeeds("succ(X, 0)")


class TestUnificationBuiltins:
    def test_equals(self):
        assert one(engine(), "X = f(1)", "X") == "f(1)"

    def test_not_unifiable(self):
        eng = engine()
        assert eng.succeeds("a \\= b")
        assert not eng.succeeds("X \\= b")  # X unifies with b

    def test_identity(self):
        eng = engine()
        assert eng.succeeds("f(X) == f(X)")
        assert not eng.succeeds("f(X) == f(Y)")
        assert eng.succeeds("f(X) \\== f(Y)")

    def test_standard_order(self):
        eng = engine()
        assert eng.succeeds("1 @< a")       # numbers before atoms
        assert eng.succeeds("a @< f(1)")    # atoms before compounds
        assert eng.succeeds("X @< 1")       # vars first
        assert eng.succeeds("f(1) @< g(1)")

    def test_compare(self):
        assert one(engine(), "compare(O, 1, 2)", "O") == "<"
        assert one(engine(), "compare(O, b, a)", "O") == ">"
        assert one(engine(), "compare(O, x, x)", "O") == "="


class TestTypeTests:
    def test_var_nonvar(self):
        eng = engine()
        assert eng.succeeds("var(X)")
        assert not eng.succeeds("var(a)")
        assert eng.succeeds("nonvar(a)")
        assert eng.succeeds("X = 1, nonvar(X)")

    def test_atom_number(self):
        eng = engine()
        assert eng.succeeds("atom(foo)")
        assert not eng.succeeds("atom(1)")
        assert not eng.succeeds("atom(f(x))")
        assert eng.succeeds("number(3.5)")
        assert eng.succeeds("integer(3)")
        assert not eng.succeeds("integer(3.5)")
        assert eng.succeeds("float(3.5)")

    def test_atomic_compound(self):
        eng = engine()
        assert eng.succeeds("atomic([])")
        assert eng.succeeds("compound(f(x))")
        assert eng.succeeds("compound([a])")
        assert not eng.succeeds("compound(foo)")

    def test_callable(self):
        eng = engine()
        assert eng.succeeds("callable(foo)")
        assert eng.succeeds("callable(f(x))")
        assert not eng.succeeds("callable(3)")

    def test_ground(self):
        eng = engine()
        assert eng.succeeds("ground(f(1, a))")
        assert not eng.succeeds("ground(f(1, X))")

    def test_is_list(self):
        eng = engine()
        assert eng.succeeds("is_list([1, 2])")
        assert not eng.succeeds("is_list([1 | T])")


class TestTermInspection:
    def test_functor_decompose(self):
        eng = engine()
        (sol,) = eng.ask("functor(foo(a, b), N, A)")
        assert str(sol["N"]) == "foo"
        assert str(sol["A"]) == "2"

    def test_functor_atom(self):
        (sol,) = engine().ask("functor(foo, N, A)")
        assert str(sol["N"]), str(sol["A"]) == ("foo", "0")

    def test_functor_construct(self):
        result = one(engine(), "functor(T, f, 2)", "T")
        assert result.startswith("f(") and result.count(",") == 1

    def test_functor_demands_modes(self):
        # The paper's example (§V-B): functor with only an arity errors.
        with pytest.raises(InstantiationError):
            engine().succeeds("functor(T, N, 2)")

    def test_arg(self):
        assert one(engine(), "arg(2, f(a, b, c), X)", "X") == "b"
        assert not engine().succeeds("arg(9, f(a), X)")

    def test_arg_enumerates(self):
        solutions = engine().ask("arg(N, f(a, b), X)")
        assert [(str(s["N"]), str(s["X"])) for s in solutions] == [
            ("1", "a"), ("2", "b"),
        ]

    def test_univ_decompose(self):
        assert one(engine(), "f(a, b) =.. L", "L") == "[f, a, b]"

    def test_univ_construct(self):
        assert one(engine(), "T =.. [g, 1]", "T") == "g(1)"

    def test_univ_atom(self):
        assert one(engine(), "foo =.. L", "L") == "[foo]"

    def test_copy_term(self):
        eng = engine()
        (sol,) = eng.ask("copy_term(f(X, X, a), C)")
        text = str(sol["C"])
        assert text.startswith("f(") and text.endswith(", a)")


class TestIO:
    def test_write_captures(self):
        eng = engine()
        eng.succeeds("write(hello)")
        assert eng.output_text() == "hello"

    def test_write_operator_notation(self):
        eng = engine()
        eng.succeeds("write(1 + 2)")
        assert eng.output_text() == "1 + 2"

    def test_nl_tab_put(self):
        eng = engine()
        eng.succeeds("write(a), nl, tab(3), put(0'b)")
        assert eng.output_text() == "a\n   b"

    def test_writeln(self):
        eng = engine()
        eng.succeeds("writeln(x)")
        assert eng.output_text() == "x\n"

    def test_read_from_queue(self):
        eng = engine()
        eng.input_terms.append(Atom("hello"))
        assert one(eng, "read(X)", "X") == "hello"

    def test_read_empty_gives_end_of_file(self):
        assert one(engine(), "read(X)", "X") == "end_of_file"


class TestMetaCall:
    def test_call(self):
        eng = engine("f(1). f(2).")
        assert [str(s["X"]) for s in eng.ask("call(f(X))")] == ["1", "2"]

    def test_call_with_extra_args(self):
        eng = engine("add(X, Y, Z) :- Z is X + Y.")
        assert one(eng, "call(add(1), 2, X)", "X") == "3"

    def test_call_unbound_raises(self):
        with pytest.raises(InstantiationError):
            engine().succeeds("call(G)")

    def test_once(self):
        eng = engine("f(1). f(2).")
        assert [str(s["X"]) for s in eng.ask("once(f(X))")] == ["1"]

    def test_forall(self):
        eng = engine("n(1). n(2). even_or_small(X) :- X < 10.")
        assert eng.succeeds("forall(n(X), even_or_small(X))")
        eng2 = engine("n(1). n(20). even_or_small(X) :- X < 10.")
        assert not eng2.succeeds("forall(n(X), even_or_small(X))")


class TestAllSolutions:
    SOURCE = """
    age(peter, 7). age(ann, 11). age(pat, 8). age(tom, 5).
    likes(mary, peter). likes(mary, pat).
    """

    def test_findall(self):
        assert one(engine(self.SOURCE), "findall(C, age(C, _), L)", "L") == (
            "[peter, ann, pat, tom]"
        )

    def test_findall_empty_list_on_failure(self):
        assert one(engine(self.SOURCE), "findall(C, age(C, 99), L)", "L") == "[]"

    def test_findall_template_shape(self):
        result = one(engine(self.SOURCE), "findall(A - C, age(C, A), L)", "L")
        assert result == "[7 - peter, 11 - ann, 8 - pat, 5 - tom]"

    def test_bagof_fails_on_empty(self):
        assert not engine(self.SOURCE).succeeds("bagof(C, age(C, 99), L)")

    def test_bagof_groups_by_free_variable(self):
        # Without ^, bagof backtracks over the ages.
        solutions = engine(self.SOURCE).ask("bagof(C, age(C, A), L)")
        assert len(solutions) == 4  # one group per distinct age

    def test_bagof_caret_suppresses_grouping(self):
        solutions = engine(self.SOURCE).ask("bagof(C, A ^ age(C, A), L)")
        assert len(solutions) == 1
        assert str(solutions[0]["L"]) == "[peter, ann, pat, tom]"

    def test_setof_sorts_and_dedups(self):
        eng = engine("n(3). n(1). n(3). n(2).")
        assert one(eng, "setof(X, n(X), L)", "L") == "[1, 2, 3]"

    def test_setof_grouping(self):
        solutions = engine(self.SOURCE).ask("setof(P, likes(L, P), S)")
        assert len(solutions) == 1
        assert str(solutions[0]["S"]) == "[pat, peter]"


class TestListBuiltins:
    def test_length_of_list(self):
        assert one(engine(), "length([a, b, c], N)", "N") == "3"

    def test_length_builds_list(self):
        result = one(engine(), "length(L, 2)", "L")
        assert result.startswith("[") and result.count(",") == 1

    def test_length_enumerates(self):
        solutions = engine().ask("length(L, N), N > 1", limit=2)
        assert [str(s["N"]) for s in solutions] == ["2", "3"]

    def test_length_partial_list(self):
        assert one(engine(), "length([a | T], 3)", "T").count(",") == 1

    def test_between(self):
        assert [str(s["X"]) for s in engine().ask("between(1, 4, X)")] == [
            "1", "2", "3", "4",
        ]

    def test_between_check(self):
        assert engine().succeeds("between(1, 10, 5)")
        assert not engine().succeeds("between(1, 10, 50)")

    def test_list_library(self):
        eng = engine(LIST_LIBRARY)
        assert one(eng, "append([1, 2], [3], L)", "L") == "[1, 2, 3]"
        assert eng.count_solutions("member(X, [a, b, c])") == 3
        assert one(eng, "reverse([1, 2, 3], R)", "R") == "[3, 2, 1]"
        assert eng.count_solutions("permutation([1, 2, 3], P)") == 6
        assert one(eng, "nth1(2, [a, b, c], X)", "X") == "b"
        assert one(eng, "last([a, b, c], X)", "X") == "c"

    def test_append_split_mode(self):
        eng = engine(LIST_LIBRARY)
        assert eng.count_solutions("append(A, B, [1, 2, 3])") == 4
