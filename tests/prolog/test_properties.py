"""Property-based tests (hypothesis) for the Prolog substrate invariants:
unification algebra, trail discipline, parser/writer round-trips, and
standard-order laws."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.prolog.reader.parser import parse_term
from repro.prolog.terms import (
    Atom,
    Struct,
    Var,
    copy_term,
    structural_eq,
    term_is_ground,
    term_ordering_key,
    term_variables,
)
from repro.prolog.unify import Trail, unify
from repro.prolog.writer import term_to_string

# -- term strategies -------------------------------------------------------

atom_names = st.sampled_from(
    ["a", "b", "c", "foo", "bar", "[]", "hello world", "it's", "+", ":-"]
)
atoms = atom_names.map(Atom)
numbers = st.one_of(
    st.integers(min_value=-1_000_000, max_value=1_000_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(float),
)
functor_names = st.sampled_from(["f", "g", "h", "pair", "."])


def structs(children):
    return st.builds(
        lambda name, args: Struct(name, args),
        functor_names,
        st.lists(children, min_size=1, max_size=3),
    )


ground_terms = st.recursive(st.one_of(atoms, numbers), structs, max_leaves=12)


@st.composite
def open_terms(draw):
    """Terms that may contain (shared) free variables."""
    pool = [Var("X"), Var("Y"), Var("Z")]

    def build(depth):
        kind = draw(st.integers(min_value=0, max_value=3 if depth < 3 else 2))
        if kind == 0:
            return draw(atoms)
        if kind == 1:
            return draw(numbers)
        if kind == 2:
            return pool[draw(st.integers(min_value=0, max_value=2))]
        name = draw(functor_names)
        arity = draw(st.integers(min_value=1, max_value=3))
        return Struct(name, tuple(build(depth + 1) for _ in range(arity)))

    return build(0)


# -- unification properties -----------------------------------------------


class TestUnificationProperties:
    @given(ground_terms)
    def test_reflexive_on_ground(self, term):
        assert unify(term, term, Trail())

    @given(open_terms())
    def test_self_unification_succeeds(self, term):
        trail = Trail()
        assert unify(term, term, trail)
        trail.undo_to(0)

    @given(open_terms(), open_terms())
    def test_symmetric(self, left, right):
        trail = Trail()
        forward = unify(left, right, trail, occurs_check=True)
        trail.undo_to(0)
        backward = unify(right, left, trail, occurs_check=True)
        trail.undo_to(0)
        assert forward == backward

    @given(open_terms(), open_terms())
    def test_trail_restores_state(self, left, right):
        before_left = term_to_string(copy_term(left))
        before_right = term_to_string(copy_term(right))
        trail = Trail()
        mark = trail.mark()
        unify(left, right, trail)
        trail.undo_to(mark)
        assert term_to_string(copy_term(left)) == before_left
        assert term_to_string(copy_term(right)) == before_right

    @given(open_terms(), ground_terms)
    def test_unified_terms_are_structurally_equal(self, pattern, ground):
        trail = Trail()
        if unify(pattern, ground, trail):
            assert structural_eq(pattern, ground)
        trail.undo_to(0)

    @given(ground_terms, ground_terms)
    def test_ground_unification_is_equality(self, left, right):
        trail = Trail()
        result = unify(left, right, trail)
        trail.undo_to(0)
        assert result == structural_eq(left, right)

    @given(open_terms())
    def test_var_unifies_with_anything(self, term):
        trail = Trail()
        v = Var()
        assert unify(v, term, trail)
        trail.undo_to(0)


# -- copy/rename properties --------------------------------------------------


class TestCopyProperties:
    @given(open_terms())
    def test_copy_preserves_shape(self, term):
        assert term_to_string(copy_term(term)) == term_to_string(term)

    @given(open_terms())
    def test_copy_has_fresh_variables(self, term):
        original_vars = set(map(id, term_variables(term)))
        copied_vars = set(map(id, term_variables(copy_term(term))))
        assert not (original_vars & copied_vars)

    @given(ground_terms)
    def test_ground_copy_identical(self, term):
        assert structural_eq(copy_term(term), term)

    @given(open_terms())
    def test_groundness_preserved(self, term):
        assert term_is_ground(copy_term(term)) == term_is_ground(term)


# -- parser/writer round-trip ---------------------------------------------------


class TestRoundTripProperties:
    @given(ground_terms)
    @settings(max_examples=200)
    def test_ground_roundtrip(self, term):
        text = term_to_string(term)
        reparsed = parse_term(text)
        assert structural_eq(reparsed, term), f"{text!r} -> {reparsed!r}"

    @given(open_terms())
    def test_open_roundtrip_modulo_renaming(self, term):
        text = term_to_string(term)
        reparsed = parse_term(text)
        assert term_to_string(reparsed) == text


# -- standard order properties -----------------------------------------------------


class TestOrderProperties:
    @given(ground_terms, ground_terms)
    def test_total_order(self, left, right):
        lk, rk = term_ordering_key(left), term_ordering_key(right)
        assert (lk < rk) + (lk > rk) + (lk == rk) == 1

    @given(ground_terms, ground_terms, ground_terms)
    def test_transitive(self, a, b, c):
        ka, kb, kc = map(term_ordering_key, (a, b, c))
        if ka <= kb and kb <= kc:
            assert ka <= kc

    @given(ground_terms)
    def test_equal_iff_structurally_equal(self, term):
        other = copy_term(term)
        assert term_ordering_key(other) == term_ordering_key(term)
