"""Unit tests for the tokenizer."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.reader.lexer import tokenize
from repro.prolog.reader.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_atom(self):
        (tok, _) = tokenize("foo")
        assert tok.type is TokenType.ATOM
        assert tok.value == "foo"

    def test_variable(self):
        assert kinds("X _foo _") == [TokenType.VARIABLE] * 3

    def test_integer(self):
        tok = tokenize("42")[0]
        assert tok.type is TokenType.INTEGER
        assert tok.value == "42"

    def test_float(self):
        tok = tokenize("3.14")[0]
        assert tok.type is TokenType.FLOAT
        assert tok.value == "3.14"

    def test_float_exponent(self):
        assert tokenize("1.5e10")[0].type is TokenType.FLOAT
        assert tokenize("2e-3")[0].type is TokenType.FLOAT

    def test_char_code(self):
        tok = tokenize("0'a")[0]
        assert tok.type is TokenType.INTEGER
        assert tok.value == str(ord("a"))

    def test_char_code_escape(self):
        assert tokenize(r"0'\n")[0].value == str(ord("\n"))

    def test_eof_token(self):
        assert tokenize("")[0].type is TokenType.EOF


class TestQuoting:
    def test_quoted_atom(self):
        tok = tokenize("'hello world'")[0]
        assert tok.type is TokenType.ATOM
        assert tok.value == "hello world"

    def test_doubled_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_escapes(self):
        assert tokenize(r"'a\nb'")[0].value == "a\nb"
        assert tokenize(r"'a\\b'")[0].value == "a\\b"

    def test_string(self):
        tok = tokenize('"abc"')[0]
        assert tok.type is TokenType.STRING
        assert tok.value == "abc"

    def test_unterminated_quote(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("'oops")


class TestSymbolicAtoms:
    def test_clause_neck(self):
        assert values("a :- b") == ["a", ":-", "b"]

    def test_univ(self):
        assert values("X =.. L") == ["X", "=..", "L"]

    def test_naf(self):
        assert values("\\+ a") == ["\\+", "a"]

    def test_solo_atoms_do_not_merge(self):
        assert values("!;!") == ["!", ";", "!"]

    def test_comparison_chains(self):
        assert values("X @=< Y") == ["X", "@=<", "Y"]


class TestEndToken:
    def test_end_after_atom(self):
        tokens = tokenize("foo.")
        assert tokens[1].type is TokenType.END

    def test_end_requires_layout_or_eof(self):
        # '.(' is a symbolic atom '.', not a terminator.
        tokens = tokenize("foo. bar.")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.ATOM,
            TokenType.END,
            TokenType.ATOM,
            TokenType.END,
        ]

    def test_float_dot_not_end(self):
        tokens = tokenize("1.5.")
        assert tokens[0].type is TokenType.FLOAT
        assert tokens[1].type is TokenType.END


class TestComments:
    def test_line_comment(self):
        assert values("a % comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* stuff\nmore */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("a /* oops")


class TestPunctuation:
    def test_parens_brackets(self):
        assert values("( ) [ ] { } , |") == ["(", ")", "[", "]", "{", "}", ",", "|"]

    def test_empty_list_atom(self):
        tok = tokenize("[]")[0]
        assert tok.type is TokenType.ATOM
        assert tok.value == "[]"

    def test_empty_braces_atom(self):
        assert tokenize("{}")[0].value == "{}"


class TestFunctorFlag:
    def test_functor_set_when_adjacent(self):
        assert tokenize("f(x)")[0].functor

    def test_not_functor_with_space(self):
        assert not tokenize("f (x)")[0].functor

    def test_quoted_functor(self):
        assert tokenize("'my pred'(x)")[0].functor


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_error_reports_position(self):
        with pytest.raises(PrologSyntaxError) as excinfo:
            tokenize("a\n  \x01")
        assert excinfo.value.line == 2
