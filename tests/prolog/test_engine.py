"""Unit and behavioural tests for the SLD engine: resolution order,
backtracking, cut, control constructs, error handling, metrics."""

import pytest

from repro.errors import (
    CallBudgetExceeded,
    DepthLimitExceeded,
    ExistenceError,
    InstantiationError,
)
from repro.prolog import Engine
from repro.prolog.terms import Atom


FAMILY = """
parent(tom, bob).  parent(tom, liz).
parent(bob, ann).  parent(bob, pat).
parent(pat, jim).

grand(X, Z) :- parent(X, Y), parent(Y, Z).

anc(X, Y) :- parent(X, Y).
anc(X, Z) :- parent(X, Y), anc(Y, Z).
"""


def engine(source=FAMILY, **kwargs):
    return Engine.from_source(source, **kwargs)


def answers(eng, query, var):
    return [str(s[var]) for s in eng.ask(query)]


class TestResolution:
    def test_fact_query(self):
        assert engine().succeeds("parent(tom, bob)")

    def test_fact_failure(self):
        assert not engine().succeeds("parent(bob, tom)")

    def test_binding(self):
        assert answers(engine(), "parent(tom, X)", "X") == ["bob", "liz"]

    def test_rule(self):
        assert answers(engine(), "grand(tom, X)", "X") == ["ann", "pat"]

    def test_recursion(self):
        assert answers(engine(), "anc(tom, X)", "X") == [
            "bob", "liz", "ann", "pat", "jim",
        ]

    def test_clause_order_is_source_order(self):
        eng = engine("v(c). v(a). v(b).")
        assert answers(eng, "v(X)", "X") == ["c", "a", "b"]

    def test_goal_order_left_to_right(self):
        eng = engine("a(1). a(2). b(2). pair(X) :- a(X), b(X).")
        assert answers(eng, "pair(X)", "X") == ["2"]

    def test_conjunction_backtracking(self):
        eng = engine("n(1). n(2). n(3).")
        solutions = eng.ask("n(X), n(Y), X < Y")
        pairs = [(str(s["X"]), str(s["Y"])) for s in solutions]
        assert pairs == [("1", "2"), ("1", "3"), ("2", "3")]

    def test_undefined_predicate_raises(self):
        with pytest.raises(ExistenceError):
            engine().succeeds("nothing_here(X)")

    def test_variable_goal_raises(self):
        with pytest.raises(InstantiationError):
            engine().succeeds("G")

    def test_shared_variables_across_goals(self):
        eng = engine("e(a, b). e(b, c). path2(X, Z) :- e(X, Y), e(Y, Z).")
        assert answers(eng, "path2(a, Z)", "Z") == ["c"]


class TestCut:
    def test_cut_commits_to_clause(self):
        eng = engine("f(1) :- !. f(2).")
        assert answers(eng, "f(X)", "X") == ["1"]

    def test_cut_commits_bindings_to_left(self):
        eng = engine("n(1). n(2). first(X) :- n(X), !.")
        assert answers(eng, "first(X)", "X") == ["1"]

    def test_cut_only_in_selected_clause(self):
        eng = engine("g(a). g(b) :- !. g(c).")
        assert answers(eng, "g(X)", "X") == ["a", "b"]

    def test_goals_after_cut_backtrack_normally(self):
        eng = engine("n(1). n(2). h(X) :- !, n(X).")
        assert answers(eng, "h(X)", "X") == ["1", "2"]

    def test_cut_transparent_through_disjunction(self):
        eng = engine("d(X) :- (X = 1, ! ; X = 2). d(3).")
        assert answers(eng, "d(X)", "X") == ["1"]

    def test_cut_local_to_called_predicate(self):
        eng = engine("inner :- !. outer(X) :- inner, member_(X, [1, 2]). "
                     "member_(X, [X | _]). member_(X, [_ | T]) :- member_(X, T).")
        assert answers(eng, "outer(X)", "X") == ["1", "2"]

    def test_cut_fails_parent_on_backtrack(self):
        eng = engine("n(1). n(2). once_(X) :- n(X), !. nums(X) :- once_(X).")
        assert answers(eng, "nums(X)", "X") == ["1"]

    def test_if_then_else_condition_is_committed(self):
        eng = engine("n(1). n(2).")
        assert answers(eng, "(n(X) -> Y = hit ; Y = miss)", "X") == ["1"]

    def test_if_then_else_else_branch(self):
        eng = engine("n(1).")
        assert answers(eng, "(n(9) -> Y = hit ; Y = miss)", "Y") == ["miss"]

    def test_bare_if_then_fails_without_else(self):
        eng = engine("n(1).")
        assert not eng.succeeds("(n(9) -> true)")

    def test_negation_as_failure(self):
        eng = engine()
        assert eng.succeeds("\\+ parent(bob, tom)")
        assert not eng.succeeds("\\+ parent(tom, bob)")

    def test_not_spelling(self):
        assert engine().succeeds("not(parent(bob, tom))")

    def test_negation_leaves_no_bindings(self):
        eng = engine(FAMILY + "q(X) :- \\+ parent(X, zzz), X = ok.")
        assert answers(eng, "q(X)", "X") == ["ok"]


class TestFailureDrivenLoop:
    def test_show_all(self):
        eng = engine(
            "t(1). t(2). t(3). show :- t(X), write(X), nl, fail. show."
        )
        assert eng.succeeds("show")
        assert eng.output_text() == "1\n2\n3\n"


class TestSafetyBounds:
    def test_depth_limit(self):
        eng = engine("loop :- loop.", max_depth=50)
        with pytest.raises(DepthLimitExceeded):
            eng.succeeds("loop")

    def test_call_budget(self):
        eng = engine(call_budget=3)
        with pytest.raises(CallBudgetExceeded):
            eng.count_solutions("anc(tom, X)")

    def test_infinite_mode_detected(self):
        # delete/3 with only its first argument bound: infinitely many
        # answers — the paper's example of a mode that must be avoided.
        # Depending on which bound trips first the engine reports a depth
        # or budget overrun; either way the illegal mode is caught.
        eng = engine(
            "delete(X, [X | Y], Y). delete(U, [X | Y], [X | V]) :- delete(U, Y, V).",
            call_budget=2_000,
        )
        with pytest.raises((CallBudgetExceeded, DepthLimitExceeded)):
            eng.count_solutions("delete(a, L, R)")


class TestMetrics:
    def test_calls_counted(self):
        eng = engine("f(a). f(b).")
        _, metrics = eng.run("f(X)")
        assert metrics.calls == 1  # one call to f/1 (backtracking is free)

    def test_subgoal_calls_counted(self):
        eng = engine("f(a). g :- f(a), f(b).")
        _, metrics = eng.run("g")
        assert metrics.calls == 3  # g, then two f calls

    def test_per_predicate_breakdown(self):
        eng = engine()
        _, metrics = eng.run("grand(tom, X)")
        assert metrics.calls_by_predicate[("grand", 2)] == 1
        assert metrics.calls_by_predicate[("parent", 2)] >= 2

    def test_unifications_counted(self):
        eng = engine("f(a). f(b).")
        eng.database.indexing = False  # so both heads are attempted
        _, metrics = eng.run("f(b)")
        assert metrics.unifications == 2
        assert metrics.clause_entries == 1

    def test_run_isolates_query_cost(self):
        eng = engine()
        _, first = eng.run("parent(tom, X)")
        _, second = eng.run("parent(tom, X)")
        assert first.calls == second.calls

    def test_builtin_calls_counted(self):
        eng = engine("calc(X) :- X is 1 + 1.")
        _, metrics = eng.run("calc(X)")
        assert metrics.calls == 2  # calc/1 and is/2


class TestSolutions:
    def test_solution_snapshot_survives_backtracking(self):
        eng = engine()
        solutions = eng.ask("parent(tom, X)")
        assert [str(s["X"]) for s in solutions] == ["bob", "liz"]

    def test_underscore_vars_hidden(self):
        eng = engine()
        (solution,) = eng.ask("parent(tom, _Who), parent(tom, bob)", limit=1)
        assert "_Who" not in solution

    def test_limit(self):
        assert len(engine().ask("anc(tom, X)", limit=2)) == 2

    def test_solution_equality(self):
        eng = engine()
        first = eng.ask("parent(tom, X)")
        second = eng.ask("parent(tom, X)")
        assert first == second

    def test_solution_key_is_order_insensitive(self):
        eng = engine()
        (sol,) = eng.ask("parent(pat, X)")
        assert isinstance(sol.key(), tuple)

    def test_bool_queries(self):
        eng = engine()
        assert eng.count_solutions("parent(bob, X)") == 2


class TestEngineIndexing:
    def test_indexing_reduces_unifications(self):
        source = "".join(f"num({i}). " for i in range(100))
        indexed = Engine.from_source(source)
        indexed.database.indexing = True
        _, with_index = indexed.run("num(50)")

        plain = Engine.from_source(source)
        plain.database.indexing = False
        _, without = plain.run("num(50)")

        assert with_index.unifications < without.unifications
        assert with_index.calls == without.calls == 1

    def test_same_answers_with_and_without_indexing(self):
        source = "p(a, 1). p(b, 2). p(X, 3)."
        indexed = Engine.from_source(source)
        plain = Engine.from_source(source)
        plain.database.indexing = False
        assert indexed.ask("p(a, N)") == plain.ask("p(a, N)")
