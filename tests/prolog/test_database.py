"""Unit tests for the clause database and first-argument indexing."""

import pytest

from repro.prolog.database import Clause, Database, body_goals, goals_to_body, split_clause
from repro.prolog.reader.parser import parse_term
from repro.prolog.terms import Atom, Struct, Var


class TestSplitClause:
    def test_fact(self):
        head, body = split_clause(parse_term("f(a)"))
        assert head.indicator == ("f", 1)
        assert body is Atom("true")

    def test_rule(self):
        head, body = split_clause(parse_term("a :- b, c"))
        assert head is Atom("a")
        assert body.name == ","


class TestBodyGoals:
    def test_flattens_conjunction(self):
        goals = body_goals(parse_term("a, b, c"))
        assert [g.name for g in goals] == ["a", "b", "c"]

    def test_nested_left(self):
        goals = body_goals(parse_term("(a, b), c"))
        assert [g.name for g in goals] == ["a", "b", "c"]

    def test_disjunction_stays_single(self):
        goals = body_goals(parse_term("a, (b ; c), d"))
        assert len(goals) == 3
        assert goals[1].name == ";"

    def test_single_goal(self):
        assert [g.name for g in body_goals(Atom("a"))] == ["a"]

    def test_roundtrip(self):
        body = parse_term("a, b, c, d")
        assert body_goals(goals_to_body(body_goals(body))) == body_goals(body)

    def test_empty_goals_to_true(self):
        assert goals_to_body([]) is Atom("true")


class TestDatabaseBasics:
    def test_from_source(self):
        db = Database.from_source("f(a). f(b). g(X) :- f(X).")
        assert db.defines(("f", 1))
        assert db.defines(("g", 1))
        assert len(db.clauses(("f", 1))) == 2

    def test_source_order_preserved(self):
        db = Database.from_source("f(c). f(a). f(b).")
        heads = [c.head.args[0].name for c in db.clauses(("f", 1))]
        assert heads == ["c", "a", "b"]

    def test_directives_collected(self):
        db = Database.from_source(":- mode(f(+)). f(a).")
        assert len(db.directives) == 1
        assert db.directives[0].indicator == ("mode", 1)

    def test_clause_is_fact(self):
        db = Database.from_source("f(a). g :- f(a).")
        assert db.clauses(("f", 1))[0].is_fact
        assert not db.clauses(("g", 0))[0].is_fact

    def test_rename_produces_fresh_variant(self):
        db = Database.from_source("f(X, X).")
        clause = db.clauses(("f", 2))[0]
        head1, _ = clause.rename()
        head2, _ = clause.rename()
        assert head1.args[0] is not head2.args[0]
        assert head1.args[0] is head1.args[1]

    def test_undefined_predicate(self):
        db = Database()
        assert db.clauses(("nope", 3)) == []
        assert not db.defines(("nope", 3))

    def test_len_counts_clauses(self):
        db = Database.from_source("f(a). f(b). g.")
        assert len(db) == 3

    def test_to_terms_roundtrip(self):
        db = Database.from_source("f(a). g(X) :- f(X).")
        terms = db.to_terms()
        assert len(terms) == 2
        assert terms[1].indicator == (":-", 2)


class TestReplacePredicate:
    def test_replace(self):
        db = Database.from_source("f(a). f(b).")
        new = [Clause(Struct("f", (Atom("z"),)), Atom("true"))]
        db.replace_predicate(("f", 1), new)
        assert [c.head.args[0].name for c in db.clauses(("f", 1))] == ["z"]

    def test_replace_renumbers(self):
        db = Database.from_source("f(a).")
        clauses = db.clauses(("f", 1)) * 3
        db.replace_predicate(("f", 1), clauses)
        assert [c.index for c in db.clauses(("f", 1))] == [0, 1, 2]

    def test_remove(self):
        db = Database.from_source("f(a).")
        db.remove_predicate(("f", 1))
        assert not db.defines(("f", 1))


class TestIndexing:
    SOURCE = "p(a, 1). p(b, 2). p(a, 3). p(X, 4). p([h | t], 5). p(7, 6)."

    def test_bound_atom_filters(self):
        db = Database.from_source(self.SOURCE, indexing=True)
        goal = parse_term("p(a, N)")
        picked = db.matching_clauses(goal)
        # a-clauses plus the variable-head clause, in source order.
        values = [c.head.args[1] for c in picked]
        assert values == [1, 3, 4]

    def test_unbound_first_arg_gets_all(self):
        db = Database.from_source(self.SOURCE, indexing=True)
        goal = parse_term("p(X, N)")
        assert len(db.matching_clauses(goal)) == 6

    def test_struct_key(self):
        db = Database.from_source(self.SOURCE, indexing=True)
        picked = db.matching_clauses(parse_term("p([a | B], N)"))
        assert [c.head.args[1] for c in picked] == [4, 5]

    def test_number_key(self):
        db = Database.from_source(self.SOURCE, indexing=True)
        picked = db.matching_clauses(parse_term("p(7, N)"))
        assert [c.head.args[1] for c in picked] == [4, 6]

    def test_no_match_key_gets_var_clauses_only(self):
        db = Database.from_source(self.SOURCE, indexing=True)
        picked = db.matching_clauses(parse_term("p(zzz, N)"))
        assert [c.head.args[1] for c in picked] == [4]

    def test_indexing_off_returns_all(self):
        db = Database.from_source(self.SOURCE, indexing=False)
        assert len(db.matching_clauses(parse_term("p(a, N)"))) == 6

    def test_index_invalidated_on_add(self):
        db = Database.from_source("p(a, 1).", indexing=True)
        db.matching_clauses(parse_term("p(a, N)"))  # build index
        db.consult("p(a, 2).")
        picked = db.matching_clauses(parse_term("p(a, N)"))
        assert [c.head.args[1] for c in picked] == [1, 2]

    def test_zero_arity_unaffected(self):
        db = Database.from_source("q. q.", indexing=True)
        assert len(db.matching_clauses(Atom("q"))) == 2

    def test_copy_shares_clauses_not_lists(self):
        db = Database.from_source("p(a, 1).")
        other = db.copy()
        other.consult("p(b, 2).")
        assert len(db.clauses(("p", 2))) == 1
        assert len(other.clauses(("p", 2))) == 2
