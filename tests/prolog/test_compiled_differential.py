"""Differential tests: compiled clause resolution vs. the reference path.

The compiled engine (slot-based skeletons, lazy body materialization,
flattened conjunctions — :mod:`repro.prolog.compile`) must be
observably identical to the interpreted reference path preserved as
``Engine(compiled=False)``: same solutions, in the same order, and the
same deterministic metrics counters. The paper's cost model consumes
those counters, so "same answers but different charge" would silently
corrupt every calibration downstream.

Coverage: all bundled benchmark programs (the paper's §VII evaluation
set) across their table queries, the tabling suite, and the control
constructs whose interaction with the flattened goal-list loop is
subtle — cut, if-then-else, negation-as-failure bodies.

The second half compares *evaluation strategies*: bottom-up semi-naive
materialization (``Engine(eval_strategy="bottomup")``) must produce
answer sets identical **as sets** to top-down SLD on every bundled
program and on randomized join programs (bottom-up deduplicates and
reorders answers, so order and multiplicity legitimately differ), and
``eval_strategy="topdown"`` must be byte-identical to the default
engine — answers *and* every deterministic counter.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.programs import REGISTRY, corporate, family_tree
from repro.prolog import Engine

#: The deterministic counters both paths must agree on.
COMPARED_COUNTERS = (
    "calls",
    "unifications",
    "clause_entries",
    "backtracks",
    "table_hits",
    "table_misses",
    "table_answers",
    "tables_completed",
)


#: Counters the VM must match against the PR 3 compiled path *exactly*,
#: beyond the interpreter-comparable set: both run the same skeletons
#: and fingerprints, so even the compilation-specific charges must
#: agree byte for byte (the interpreted path legitimately differs on
#: these — it has no fast-reject and instantiates whole clauses).
VM_EXACT_COUNTERS = COMPARED_COUNTERS + (
    "skeleton_instantiations",
    "head_fast_rejects",
)


def assert_equivalent(source, query, limit=None):
    """Three-way oracle: interpreted vs compiled vs bytecode VM.

    The compiled engine must be observably identical to the seed
    interpreter (answers, order, shared counters), and the VM engine
    must be identical to the compiled one on the *full* counter set
    including the compilation-specific charges.
    """
    compiled = Engine.from_source(source)
    reference = Engine.from_source(source, compiled=False)
    machine = Engine.from_source(source, vm=True)
    assert compiled.compiled and not reference.compiled and machine.vm

    compiled_solutions = compiled.ask(query, limit=limit)
    reference_solutions = reference.ask(query, limit=limit)
    machine_solutions = machine.ask(query, limit=limit)
    compiled_keys = [s.key() for s in compiled_solutions]
    assert compiled_keys == [
        s.key() for s in reference_solutions
    ], f"solution drift on {query!r}"
    assert compiled_keys == [
        s.key() for s in machine_solutions
    ], f"vm solution drift on {query!r}"

    left, right = compiled.metrics, reference.metrics
    for counter in COMPARED_COUNTERS:
        assert getattr(left, counter) == getattr(right, counter), (
            f"{counter} drift on {query!r}: "
            f"compiled={getattr(left, counter)} "
            f"interpreted={getattr(right, counter)}"
        )
    assert left.calls_by_predicate == right.calls_by_predicate

    vm_metrics = machine.metrics
    for counter in VM_EXACT_COUNTERS:
        assert getattr(vm_metrics, counter) == getattr(left, counter), (
            f"{counter} drift on {query!r}: "
            f"vm={getattr(vm_metrics, counter)} "
            f"compiled={getattr(left, counter)}"
        )
    assert vm_metrics.calls_by_predicate == left.calls_by_predicate


class TestBundledPrograms:
    @pytest.mark.parametrize("label, query", corporate.TABLE3_QUERIES)
    def test_corporate(self, label, query):
        assert_equivalent(corporate.source(), query)

    @pytest.mark.parametrize("name, arity", family_tree.TESTED_PREDICATES)
    def test_family_tree(self, name, arity):
        variables = ", ".join(f"V{i}" for i in range(arity))
        assert_equivalent(family_tree.source(), f"{name}({variables})")

    @pytest.mark.parametrize(
        "program", ["meal", "p58", "team", "kmbench"]
    )
    def test_table4_programs(self, program):
        module = REGISTRY[program]
        for _, queries in module.TABLE4_QUERIES:
            # The fully-instantiated meal sweep has 25 queries; a
            # slice keeps the suite fast without losing the mode.
            for query in queries[:5]:
                assert_equivalent(module.source(), query)

    def test_geography(self):
        geography = REGISTRY["geography"]
        for _, query in geography.QUESTIONS:
            assert_equivalent(geography.source(), query)


class TestControlConstructs:
    def test_cut_in_clause_body(self):
        source = """
            first(X) :- member(X, [a, b, c]), !.
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
        """
        assert_equivalent(source, "first(X)")

    def test_cut_commits_clause_choice(self):
        source = """
            grade(N, fail) :- N < 60, !.
            grade(N, pass) :- N < 90, !.
            grade(_, ace).
        """
        for n in (40, 75, 95):
            assert_equivalent(source, f"grade({n}, G)")

    def test_if_then_else_body(self):
        source = """
            sign(N, neg) :- (N < 0 -> true ; fail).
            sign(N, pos) :- (N < 0 -> fail ; true).
            classify(N, S) :- (N =:= 0 -> S = zero ; sign(N, S)).
        """
        for n in (-3, 0, 7):
            assert_equivalent(source, f"classify({n}, S)")

    def test_negation_in_body(self):
        source = """
            likes(alice, prolog).
            likes(bob, lisp).
            person(alice). person(bob). person(carol).
            dislikes_prolog(P) :- person(P), \\+ likes(P, prolog).
        """
        assert_equivalent(source, "dislikes_prolog(P)")

    def test_disjunction_body(self):
        source = """
            p(1). p(2).
            q(3). q(4).
            r(X) :- (p(X) ; q(X)).
        """
        assert_equivalent(source, "r(X)")

    def test_deep_conjunction_with_backtracking(self):
        source = """
            d(1). d(2). d(3).
            pick(A, B, C, D) :- d(A), d(B), d(C), d(D), A < B, B < C, C < D.
            pick2(A, B, C) :- d(A), d(B), d(C), A < B, B < C.
        """
        assert_equivalent(source, "pick2(A, B, C)")
        assert_equivalent(source, "pick(A, B, C, D)")

    def test_true_goals_in_body(self):
        # Compile-time drops ``true`` body goals; the interpreted path
        # solves them as builtins. Charges must still agree (the
        # engine never charged ``true`` either way).
        source = "p(X) :- true, q(X), true.\nq(1). q(2)."
        assert_equivalent(source, "p(X)")

    def test_variable_body_goal(self):
        source = "call_it(G) :- G.\np(1). p(2)."
        assert_equivalent(source, "call_it(p(X))")


class TestTabling:
    def test_left_recursive_closure(self):
        source = """
            :- table path/2.
            edge(a, b). edge(b, c). edge(c, d). edge(b, d).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).
        """
        assert_equivalent(source, "path(a, Where)")

    def test_mutual_recursion(self):
        source = """
            :- table even/1.
            :- table odd/1.
            even(0).
            even(N) :- N > 0, M is N - 1, odd(M).
            odd(N) :- N > 0, M is N - 1, even(M).
        """
        assert_equivalent(source, "even(8)")

    def test_tabled_with_nontabled_helpers(self):
        source = """
            :- table reach/2.
            arc(1, 2). arc(2, 3). arc(3, 1). arc(3, 4).
            hop(X, Y) :- arc(X, Y).
            reach(X, Y) :- hop(X, Y).
            reach(X, Y) :- reach(X, Z), hop(Z, Y).
        """
        assert_equivalent(source, "reach(1, N)")


_CONSTANTS = ["a", "b", "c", "0", "1", "2", "f(a)", "f(b)", "g(a, b)"]


class TestPropertyDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        facts=st.lists(
            st.tuples(
                st.sampled_from(_CONSTANTS), st.sampled_from(_CONSTANTS)
            ),
            min_size=1,
            max_size=12,
        ),
        first=st.sampled_from(_CONSTANTS + ["X"]),
        second=st.sampled_from(_CONSTANTS + ["Y"]),
    )
    def test_random_join_program(self, facts, first, second):
        # Random fact tables under a two-literal join rule, queried in
        # every binding mode: the compiled path must agree with the
        # reference path on answers, order, and charges.
        source = "\n".join(f"p({a}, {b})." for a, b in facts)
        source += "\nj(A, C) :- p(A, B), p(B, C).\n"
        assert_equivalent(source, f"j({first}, {second})")


def assert_same_answer_set(source, query):
    """Bottom-up and top-down answer sets must be identical *as sets*.

    Bottom-up materialization deduplicates (a relation stores each fact
    once) and enumerates in relation order, so answer order and
    multiplicity may differ from SLD; the set of bindings may not.
    """
    topdown = Engine.from_source(source)
    bottomup = Engine.from_source(source, eval_strategy="bottomup")
    topdown_set = {s.key() for s in topdown.ask(query)}
    bottomup_set = {s.key() for s in bottomup.ask(query)}
    assert bottomup_set == topdown_set, f"answer-set drift on {query!r}"


class TestBottomUpDifferential:
    @pytest.mark.parametrize("label, query", corporate.TABLE3_QUERIES)
    def test_corporate(self, label, query):
        assert_same_answer_set(corporate.source(), query)

    @pytest.mark.parametrize("name, arity", family_tree.TESTED_PREDICATES)
    def test_family_tree(self, name, arity):
        variables = ", ".join(f"V{i}" for i in range(arity))
        assert_same_answer_set(family_tree.source(), f"{name}({variables})")

    @pytest.mark.parametrize(
        "program", ["meal", "p58", "team", "kmbench"]
    )
    def test_table4_programs(self, program):
        module = REGISTRY[program]
        for _, queries in module.TABLE4_QUERIES:
            for query in queries[:3]:
                assert_same_answer_set(module.source(), query)

    def test_geography(self):
        geography = REGISTRY["geography"]
        for _, query in geography.QUESTIONS:
            assert_same_answer_set(geography.source(), query)

    def test_recursive_closure_all_modes(self):
        # Cyclic graph: plain SLD diverges, so the top-down reference
        # runs tabled; the bottom-up dispatcher claims path/2 before
        # the tabling check, so the same source exercises both.
        source = """
            :- table path/2.
            edge(a, b). edge(b, c). edge(c, d). edge(b, d). edge(d, a).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
        """
        for query in ("path(a, X)", "path(X, d)", "path(X, Y)", "path(a, d)"):
            assert_same_answer_set(source, query)

    def test_stratified_negation(self):
        # The recursion sits after the edge/2 binder so SLD terminates
        # on the acyclic graph; bottom-up evaluates reach/1 then the
        # negation stratum on top of the materialized relation.
        source = """
            node(a). node(b). node(c). node(d).
            edge(a, b). edge(b, c).
            reach(X) :- edge(a, X).
            reach(Y) :- edge(X, Y), reach(X).
            unreached(X) :- node(X), \\+ reach(X).
        """
        assert_same_answer_set(source, "reach(X)")
        assert_same_answer_set(source, "unreached(X)")

    def test_topdown_strategy_counters_byte_identical(self):
        # eval_strategy="topdown" must construct no dispatcher and
        # charge exactly what the default engine charges.
        for program, query in (
            (family_tree.source(), "aunt(A, B)"),
            (corporate.source(), corporate.TABLE3_QUERIES[0][1]),
        ):
            default = Engine.from_source(program)
            explicit = Engine.from_source(program, eval_strategy="topdown")
            assert explicit._bottomup is None
            default_solutions = default.ask(query)
            explicit_solutions = explicit.ask(query)
            assert [s.key() for s in default_solutions] == [
                s.key() for s in explicit_solutions
            ]
            for counter in COMPARED_COUNTERS:
                assert getattr(default.metrics, counter) == getattr(
                    explicit.metrics, counter
                )
            assert (
                default.metrics.calls_by_predicate
                == explicit.metrics.calls_by_predicate
            )

    @settings(max_examples=40, deadline=None)
    @given(
        facts=st.lists(
            st.tuples(
                st.sampled_from(_CONSTANTS), st.sampled_from(_CONSTANTS)
            ),
            min_size=1,
            max_size=12,
        ),
        first=st.sampled_from(_CONSTANTS + ["X"]),
        second=st.sampled_from(_CONSTANTS + ["Y"]),
    )
    def test_random_join_same_answer_set(self, facts, first, second):
        # The bottom-up hash join over randomized fact tables must
        # agree with SLD enumeration in every binding mode, as sets.
        source = "\n".join(f"p({a}, {b})." for a, b in facts)
        source += "\nj(A, C) :- p(A, B), p(B, C).\n"
        assert_same_answer_set(source, f"j({first}, {second})")


class TestSolutionSnapshots:
    def test_shared_variable_stays_shared(self):
        # Regression: the snapshot in ``Engine.solve`` must rename all
        # query variables through ONE mapping, so two variables bound
        # to the same unbound variable still share it in the Solution.
        engine = Engine.from_source("always.")
        [solution] = engine.ask("X = f(Z), Y = Z")
        inner = solution["X"].args[0]
        assert solution["Y"] is inner

    def test_shared_variable_interpreted_path(self):
        engine = Engine.from_source("always.", compiled=False)
        [solution] = engine.ask("X = f(Z), Y = Z")
        assert solution["Y"] is solution["X"].args[0]

    def test_independent_solutions_not_shared(self):
        engine = Engine.from_source("p(1). p(2).")
        one, two = engine.ask("p(X)")
        assert one["X"] == 1 and two["X"] == 2
