"""Tests for best-argument ("auto") indexing."""

import pytest

from repro.prolog import Database, Engine
from repro.prolog.reader.parser import parse_term

# Second argument is far more selective than the first.
SOURCE = """
rec(a, k1). rec(a, k2). rec(a, k3). rec(a, k4).
rec(a, k5). rec(a, k6). rec(a, k7). rec(a, k8).
"""


class TestAutoSelection:
    def test_picks_selective_argument(self):
        database = Database(index_argument="auto")
        database.consult(SOURCE)
        picked = database.matching_clauses(parse_term("rec(X, k3)"))
        assert len(picked) == 1

    def test_first_argument_engine_cannot_filter_here(self):
        database = Database(index_argument=1)
        database.consult(SOURCE)
        picked = database.matching_clauses(parse_term("rec(X, k3)"))
        assert len(picked) == 8  # first arg unbound: everything tried

    def test_auto_still_full_scan_when_key_unbound(self):
        database = Database(index_argument="auto")
        database.consult(SOURCE)
        picked = database.matching_clauses(parse_term("rec(a, K)"))
        assert len(picked) == 8

    def test_variable_heads_penalised(self):
        source = "p(X, k1). p(X, k2). p(a, Y). p(b, Y)."
        database = Database(index_argument="auto")
        database.consult(source)
        # Position 2 has 2 concrete keys but also 2 variable heads;
        # position 1 likewise — either is acceptable, behaviour must be
        # correct: bound lookups return supersets of matches.
        engine = Engine(database)
        assert engine.count_solutions("p(a, k1)") == 2  # via X-heads and a-head

    def test_answers_identical_across_index_choices(self):
        source = SOURCE + "q(V) :- rec(V, k5).\n"
        reference = None
        for index_argument in (1, 2, "auto"):
            database = Database(index_argument=index_argument)
            database.consult(source)
            answers = sorted(
                s.key() for s in Engine(database).ask("rec(A, B)")
            )
            lookups = sorted(s.key() for s in Engine(database).ask("q(V)"))
            if reference is None:
                reference = (answers, lookups)
            assert (answers, lookups) == reference

    def test_explicit_position(self):
        database = Database(index_argument=2)
        database.consult(SOURCE)
        assert len(database.matching_clauses(parse_term("rec(X, k3)"))) == 1

    def test_position_beyond_arity_clamped(self):
        database = Database(index_argument=5)
        database.consult("u(a). u(b).")
        assert len(database.matching_clauses(parse_term("u(a)"))) == 1

    def test_bad_argument_rejected(self):
        with pytest.raises(ValueError):
            Database(index_argument=0)
        with pytest.raises(ValueError):
            Database(index_argument="best")

    def test_unification_counts_drop(self):
        auto = Database(index_argument="auto")
        auto.consult(SOURCE)
        first = Database(index_argument=1)
        first.consult(SOURCE)
        _, auto_metrics = Engine(auto).run("rec(X, k3)")
        _, first_metrics = Engine(first).run("rec(X, k3)")
        assert auto_metrics.unifications < first_metrics.unifications
