"""Tests for the typed event bus and its engine/database emitters."""

import json

from repro.observability import EventBus, PortEvent, attach, detach
from repro.prolog import Database, Engine

SOURCE = """
p(1). p(2).
q(2).
r(X) :- p(X), q(X).
"""


def instrumented(source=SOURCE, **engine_kwargs):
    engine = Engine.from_source(source, **engine_kwargs)
    bus = attach(engine)
    return engine, bus


class TestPortEvents:
    def test_known_query_port_sequence(self):
        engine, bus = instrumented("f(a).")
        engine.ask("f(a)")
        ports = [e.port for e in bus.by_kind("port")]
        assert ports == ["call", "exit", "redo", "fail"]

    def test_call_event_fields(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        call = bus.by_kind("port")[0]
        assert call.port == "call"
        assert call.indicator == ("r", 1)
        assert call.depth == 0
        assert call.mode == "(-)"

    def test_mode_rendered_per_argument(self):
        engine, bus = instrumented("f(a, b).")
        engine.ask("f(a, Y)")
        call = bus.by_kind("port")[0]
        assert call.mode == "(+, -)"

    def test_events_ordered_and_nested(self):
        engine, bus = instrumented()
        engine.ask("r(2)")
        ports = [
            (e.indicator[0], e.port) for e in bus.by_kind("port")
        ]
        # r's box opens first and closes last.
        assert ports[0] == ("r", "call")
        assert ports[-1] == ("r", "fail")
        # p is called (depth 1) inside r's box.
        assert ("p", "call") in ports
        p_call = next(e for e in bus.by_kind("port") if e.indicator == ("p", 1))
        assert p_call.depth == 1

    def test_timestamps_monotone(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        stamps = [e.ts for e in bus]
        assert stamps == sorted(stamps)


class TestOtherEvents:
    def test_choicepoint_records_alternatives(self):
        engine, bus = instrumented()
        engine.ask("p(X)")
        points = bus.by_kind("choicepoint")
        assert points and points[0].indicator == ("p", 1)
        assert points[0].alternatives == 2

    def test_unify_success_and_failure(self):
        # Indexing off so the failing head is actually attempted.
        engine = Engine(Database.from_source(SOURCE, indexing=False))
        bus = attach(engine)
        engine.ask("q(1)")  # q(2) stored: one failing attempt
        unify = bus.by_kind("unify")
        assert [e.succeeded for e in unify] == [False]

    def test_index_hit_narrows(self):
        engine, bus = instrumented()
        engine.ask("p(1)")
        index = [e for e in bus.by_kind("index") if e.indicator == ("p", 1)]
        assert index and index[0].hit
        assert index[0].candidates == 1 and index[0].total == 2

    def test_index_miss_on_unbound_argument(self):
        engine, bus = instrumented()
        engine.ask("p(X)")
        index = [e for e in bus.by_kind("index") if e.indicator == ("p", 1)]
        assert index and not index[0].hit
        assert index[0].candidates == index[0].total == 2

    def test_wall_time_per_box(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        wall = bus.by_kind("wall")
        assert any(e.indicator == ("r", 1) for e in wall)
        assert all(e.seconds >= 0.0 for e in wall)
        assert bus.predicate_wall_seconds()[("r", 1)] > 0.0


class TestDisabledFastPath:
    def test_no_bus_records_nothing(self):
        engine = Engine.from_source(SOURCE)
        assert engine.events is None and engine.database.events is None
        engine.ask("r(X)")
        # Attaching afterwards shows an empty bus: nothing was buffered.
        bus = attach(engine)
        assert len(bus) == 0

    def test_call_counts_unchanged_by_instrumentation(self):
        plain = Engine.from_source(SOURCE)
        _, plain_metrics = plain.run("r(X)")
        engine, bus = instrumented()
        _, instrumented_metrics = engine.run("r(X)")
        assert plain_metrics.calls == instrumented_metrics.calls
        assert plain_metrics.unifications == instrumented_metrics.unifications
        assert plain_metrics.backtracks == instrumented_metrics.backtracks
        assert len(bus) > 0

    def test_detach_restores_fast_path(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        recorded = len(bus)
        assert detach(engine) is bus
        assert engine.events is None and engine.database.events is None
        engine.ask("r(X)")
        assert len(bus) == recorded


class TestBus:
    def test_limit_counts_drops(self):
        engine = Engine.from_source(SOURCE)
        bus = attach(engine, EventBus(limit=5))
        engine.ask("r(X)")
        assert len(bus) == 5
        assert bus.truncated and bus.dropped > 0

    def test_counts_by_kind(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        counts = bus.counts()
        assert counts["port.call"] == counts["port.fail"]
        assert counts["port"] == sum(
            counts[f"port.{p}"] for p in ("call", "exit", "redo", "fail")
        )

    def test_clear(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        bus.clear()
        assert len(bus) == 0 and not bus.truncated


class TestSerialization:
    def test_event_records_round_trip_json(self):
        engine, bus = instrumented()
        engine.ask("r(X)")
        for event in bus:
            record = event.to_record()
            decoded = json.loads(json.dumps(record))
            assert decoded["type"] == "event"
            assert decoded["kind"] == event.kind
            assert "/" in decoded["predicate"]

    def test_port_record_fields(self):
        event = PortEvent("call", ("aunt", 2), 3, "(+, -)")
        record = event.to_record()
        assert record["predicate"] == "aunt/2"
        assert record["port"] == "call"
        assert record["depth"] == 3
        assert record["mode"] == "(+, -)"
