"""Tests for pipeline spans and search counters."""

import json
import time

from repro.observability import PIPELINE_PHASES, Span, SpanRecorder
from repro.prolog import Database
from repro.reorder import Reorderer
from repro.reorder.goal_search import SearchCounters

PROGRAM = """
:- mode(path(+, -)).
edge(a, b). edge(b, c). edge(c, d).
big(1). big(2). big(3).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
probe(X, Y, Z) :- big(X), big(Y), big(Z), edge(a, X).
"""


class TestSpanRecorder:
    def test_span_times_and_counts(self):
        recorder = SpanRecorder()
        with recorder.span("fixity"):
            time.sleep(0.001)
        span = recorder.get("fixity")
        assert span is not None
        assert span.count == 1 and span.seconds > 0.0
        assert not span.skipped

    def test_repeated_entries_accumulate(self):
        recorder = SpanRecorder()
        for _ in range(3):
            with recorder.span("goal search"):
                pass
        span = recorder.get("goal search")
        assert span.count == 3
        assert len(recorder) == 1  # still one span, not three

    def test_mark_skipped_is_zero_duration(self):
        recorder = SpanRecorder()
        recorder.mark_skipped("unfold")
        span = recorder.get("unfold")
        assert span.skipped and span.count == 0 and span.seconds == 0.0

    def test_ensure_materialises_full_vocabulary(self):
        recorder = SpanRecorder()
        with recorder.span("declarations"):
            pass
        recorder.ensure()
        names = {span.name for span in recorder.spans()}
        assert names == set(PIPELINE_PHASES)
        assert not recorder.get("declarations").skipped
        assert recorder.get("calibration").skipped

    def test_meta_merged_into_record(self):
        recorder = SpanRecorder()
        with recorder.span("unfold", rounds=2):
            pass
        record = recorder.get("unfold").to_record()
        assert record["meta"] == {"rounds": 2}

    def test_records_are_json_serialisable(self):
        recorder = SpanRecorder()
        recorder.ensure()
        for record in recorder.to_records():
            decoded = json.loads(json.dumps(record))
            assert decoded["type"] == "span"
            assert set(decoded) >= {"name", "seconds", "count", "skipped"}

    def test_format_mentions_skipped(self):
        recorder = SpanRecorder()
        recorder.mark_skipped("calibration")
        assert "skipped" in recorder.format()


class TestReordererSpans:
    def test_pipeline_phases_populated(self):
        reorderer = Reorderer(Database.from_source(PROGRAM))
        reorderer.reorder()
        spans = reorderer.spans
        for name in ("declarations", "call graph", "fixity", "semifixity",
                     "mode inference", "goal search", "clause order"):
            span = spans.get(name)
            assert span is not None and span.count > 0, name
        # No unfolding requested: materialised but skipped.
        assert spans.get("unfold").skipped

    def test_shared_recorder_is_reused(self):
        recorder = SpanRecorder()
        reorderer = Reorderer(Database.from_source(PROGRAM), spans=recorder)
        assert reorderer.spans is recorder
        assert recorder.get("fixity") is not None


class TestSearchCounters:
    def test_counters_populated_by_reorder(self):
        reorderer = Reorderer(Database.from_source(PROGRAM))
        reorderer.reorder()
        counters = reorderer.search_counters
        assert counters.blocks > 0
        # probe/3 has a 4-goal mobile block: permuted exhaustively.
        assert counters.exhaustive_blocks > 0
        assert counters.exhaustive_permutations > 1

    def test_to_record_shape(self):
        counters = SearchCounters(blocks=2, exhaustive_blocks=1)
        record = counters.to_record()
        assert record["type"] == "search"
        assert record["blocks"] == 2
        assert json.loads(json.dumps(record)) == record

    def test_admissibility_clean_by_default(self):
        reorderer = Reorderer(Database.from_source(PROGRAM))
        reorderer.reorder()
        assert reorderer.search_counters.admissibility_violations == 0
