"""Tests for the Chrome/Perfetto trace export: spans, event-bus box
windows and recorder samples rendered as Trace Event JSON."""

import json

from repro.observability import SpanRecorder, attach
from repro.observability.streaming import StreamingRecorder, attach_recorder
from repro.observability.streaming.perfetto import (
    perfetto_trace,
    trace_events_from_bus,
    trace_events_from_samples,
    trace_events_from_spans,
    write_trace,
)
from repro.prolog import Engine

SOURCE = "q. r. p :- q, r."


def traced_engine():
    engine = Engine.from_source(SOURCE)
    recorder = attach_recorder(engine, StreamingRecorder())
    engine.ask("p")
    return engine, recorder


class TestSpanEvents:
    def test_sequential_timeline_with_durations(self):
        spans = SpanRecorder()
        with spans.span("fixity"):
            pass
        with spans.span("modes"):
            pass
        events = trace_events_from_spans(spans)
        assert [event["name"] for event in events] == ["fixity", "modes"]
        assert events[0]["ts"] == 0.0
        # The second span starts where the first ended: no gaps.
        assert events[1]["ts"] == events[0]["dur"]
        assert all(event["ph"] == "X" for event in events)

    def test_skipped_spans_are_zero_width_markers(self):
        spans = SpanRecorder()
        spans.mark_skipped("domains", reason="cached")
        events = trace_events_from_spans(spans)
        assert events[0]["dur"] == 0.0
        assert events[0]["args"]["skipped"] is True


class TestBusEvents:
    def test_port_crossings_pair_into_windows(self):
        engine = Engine.from_source(SOURCE)
        bus = attach(engine)
        engine.ask("p")
        events = trace_events_from_bus(bus)
        names = {event["name"] for event in events}
        assert {"p/0", "q/0", "r/0"} <= names
        assert all(event["dur"] >= 0.0 for event in events)
        # Rebased: the earliest window starts at zero.
        assert min(event["ts"] for event in events) == 0.0

    def test_empty_bus_yields_no_events(self):
        engine = Engine.from_source(SOURCE)
        bus = attach(engine)
        assert trace_events_from_bus(bus) == []


class TestSampleEvents:
    def test_samples_become_depth_tracked_slices(self):
        _, recorder = traced_engine()
        events = trace_events_from_samples(recorder.samples())
        assert {event["name"] for event in events} == {"p/0", "q/0", "r/0"}
        by_name = {event["name"]: event for event in events}
        # p at depth 0 → track 1; its subgoals one track deeper.
        assert by_name["p/0"]["tid"] == 1
        assert by_name["q/0"]["tid"] == by_name["p/0"]["tid"] + 1
        assert by_name["p/0"]["args"]["cost"] == 3
        assert min(event["ts"] for event in events) == 0.0

    def test_no_samples_no_events(self):
        assert trace_events_from_samples([]) == []


class TestTraceDocument:
    def test_mixed_sources_in_one_document(self):
        _, recorder = traced_engine()
        spans = SpanRecorder()
        with spans.span("reorder"):
            pass
        trace = perfetto_trace(spans=spans, samples=recorder.samples())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        names = [event["name"] for event in trace["traceEvents"]]
        assert "reorder" in names and "p/0" in names

    def test_write_trace_parses_as_json(self, tmp_path):
        _, recorder = traced_engine()
        target = tmp_path / "trace.json"
        count = write_trace(str(target), samples=recorder.samples())
        assert count == 3
        with open(target) as handle:
            document = json.load(handle)
        assert document["traceEvents"]
        assert len(document["traceEvents"]) == count
        for event in document["traceEvents"]:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float) or event["ts"] == 0
