"""Tests for the calibration-drift reporter."""

import json

from repro.markov.goal_stats import GoalStats
from repro.observability import attach
from repro.observability.drift import (
    DriftOptions,
    DriftReporter,
    collect_observations,
    compare_estimates,
)
from repro.prolog import Database, Engine


def replayed_bus(source, query):
    engine = Engine.from_source(source)
    bus = attach(engine)
    engine.ask(query)
    return bus


class TestCollectObservations:
    def test_facts_counted_once_with_all_solutions(self):
        bus = replayed_bus("p(1). p(2).", "p(X)")
        observations = collect_observations(bus)
        observation = observations[(("p", 1), "(-)")]
        assert observation.invocations == 1
        assert observation.solutions == 2
        assert observation.successes == 1
        # Cost 1: only the p/1 call itself, no subgoals.
        assert observation.total_cost == 1
        assert observation.mean_cost == 1.0
        assert observation.success_rate == 1.0

    def test_subgoal_calls_charged_to_parent_box(self):
        bus = replayed_bus(
            "p(1). p(2). q(2). r(X) :- p(X), q(X).", "r(X)"
        )
        observations = collect_observations(bus)
        r = observations[(("r", 1), "(-)")]
        assert r.invocations == 1
        assert r.solutions == 1  # only X = 2 survives q/1
        # r's box contains its own call, the p/1 call and two q/1 calls.
        assert r.total_cost == 4

    def test_failed_call_has_zero_success_rate(self):
        bus = replayed_bus("p(1).", "p(2)")
        observation = collect_observations(bus)[(("p", 1), "(+)")]
        assert observation.invocations == 1
        assert observation.successes == 0
        assert observation.solutions == 0
        assert observation.success_rate == 0.0

    def test_modes_keyed_separately(self):
        engine = Engine.from_source("p(1). p(2).")
        bus = attach(engine)
        engine.ask("p(X)")
        engine.ask("p(1)")
        observations = collect_observations(bus)
        assert (("p", 1), "(-)") in observations
        assert (("p", 1), "(+)") in observations

    def test_non_port_events_ignored(self):
        bus = replayed_bus("p(1).", "p(1)")
        with_all = collect_observations(bus)
        ports_only = collect_observations(bus.by_kind("port"))
        assert with_all.keys() == ports_only.keys()


class TestDriftReporter:
    def test_accurate_model_not_flagged(self):
        database = Database.from_source("p(1). p(2). p(3).")
        reporter = DriftReporter(database)
        records = reporter.report(query="p(X)")
        assert len(records) == 1
        record = records[0]
        assert record.indicator == ("p", 1)
        assert not record.flagged
        assert record.cost_ratio is not None

    def test_cost_declaration_far_from_reality_is_flagged(self):
        # The model is told p/1 costs 500 calls; measured cost is 1.
        database = Database.from_source(
            ":- cost(p/1, [-], 500, 1.0, 2).\np(1). p(2)."
        )
        reporter = DriftReporter(database, DriftOptions(cost_factor=3.0))
        records = reporter.report(query="p(X)")
        assert len(records) == 1
        record = records[0]
        assert record.flagged
        assert any("overestimated" in reason for reason in record.reasons)
        assert record.cost_ratio < 1.0 / 3.0

    def test_flagged_records_sort_first(self):
        database = Database.from_source(
            ":- cost(p/1, [-], 500, 1.0, 2).\n"
            "p(1). p(2).\n"
            "q(a). q(b).\n"
        )
        engine = Engine(database)
        bus = attach(engine)
        engine.ask("p(X)")
        engine.ask("q(X)")
        database.events = None
        records = DriftReporter(database).report(bus=bus)
        assert [r.indicator for r in records] == [("p", 1), ("q", 1)]
        assert records[0].flagged and not records[1].flagged

    def test_builtins_excluded(self):
        database = Database.from_source("p(X) :- X = 1.")
        records = DriftReporter(database).report(query="p(X)")
        assert all(r.indicator == ("p", 1) for r in records)

    def test_report_requires_query_or_bus(self):
        reporter = DriftReporter(Database.from_source("p(1)."))
        try:
            reporter.report()
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_record_serialises_to_json(self):
        reporter = DriftReporter(Database.from_source("p(1). p(2)."))
        for record in reporter.report(query="p(X)"):
            decoded = json.loads(json.dumps(record.to_record()))
            assert decoded["type"] == "drift"
            assert decoded["predicate"] == "p/1"
            assert {"observed", "predicted", "flagged"} <= set(decoded)

    def test_format_mentions_drift_when_flagged(self):
        database = Database.from_source(
            ":- cost(p/1, [-], 500, 1.0, 2).\np(1). p(2)."
        )
        records = DriftReporter(database).report(query="p(X)")
        assert "DRIFT" in records[0].format()


class TestDriftEdgeCases:
    def test_predicate_never_called_produces_no_record(self):
        # unused/1 is defined but the query never reaches it: drift is
        # about observed behaviour, so it must not appear at all (and
        # in particular must not be flagged as "never ran").
        database = Database.from_source("p(1).\nunused(x).")
        records = DriftReporter(database).report(query="p(X)")
        assert [r.indicator for r in records] == [("p", 1)]

    def test_zero_predicted_cost_does_not_divide_by_zero(self):
        # +1 smoothing: a zero-cost prediction vs. a zero-cost
        # observation is a perfect match, not a crash or a flag.
        predicted = GoalStats(cost=0.0, solutions=1.0, prob=1.0)
        ratio, prob_delta, reasons = compare_estimates(
            0.0, 1.0, predicted, DriftOptions()
        )
        assert ratio == 1.0
        assert prob_delta == 0.0
        assert reasons == []
        # And a modest observed cost over a zero prediction stays
        # finite, flagged only past the smoothed factor.
        ratio, _, reasons = compare_estimates(
            5.0, 1.0, predicted, DriftOptions(cost_factor=3.0)
        )
        assert ratio == 6.0
        assert any("underestimated" in reason for reason in reasons)

    def test_mode_never_enumerated_by_model_is_always_flagged(self):
        ratio, prob_delta, reasons = compare_estimates(
            3.0, 1.0, None, DriftOptions()
        )
        assert ratio is None and prob_delta is None
        assert reasons == ["mode observed at runtime but illegal for the model"]
