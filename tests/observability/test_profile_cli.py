"""End-to-end tests for the ``profile`` command and the JSONL export
paths of ``run`` and ``compare``."""

import json

import pytest

from repro.cli import main
from repro.observability import PIPELINE_PHASES

PROGRAM = """
:- entry(grandmother/2).
wife(john, jane). wife(tom, pat).
mother(john, joan). mother(joan, pat). mother(ann, joan).
girl(jan).
female(W) :- girl(W).
female(W) :- wife(_, W).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""

QUERY = "grandmother(G, pat)"


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "family.pl"
    path.write_text(PROGRAM)
    return str(path)


def load_jsonl(path):
    """Every line must round-trip through ``json.loads``."""
    records = []
    with open(path) as handle:
        for line in handle:
            assert line.endswith("\n")
            records.append(json.loads(line))
    return records


class TestProfileCommand:
    def test_jsonl_round_trips(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        assert main(["profile", program_file, QUERY, "--json", out]) == 0
        records = load_jsonl(out)
        assert all("type" in record for record in records)

    def test_record_inventory(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        records = load_jsonl(out)
        types = {}
        for record in records:
            types[record["type"]] = types.get(record["type"], 0) + 1
        assert types["profile"] == 1  # the header, first
        assert records[0]["type"] == "profile"
        assert types["span"] == len(PIPELINE_PHASES)
        assert types["search"] == 1
        assert types["metrics"] == 1
        assert types["solutions"] == 1
        assert types.get("drift", 0) >= 1
        assert types.get("event", 0) > 0

    def test_all_ten_phases_present(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        names = [r["name"] for r in load_jsonl(out) if r["type"] == "span"]
        assert sorted(names) == sorted(PIPELINE_PHASES)

    def test_no_calibrate_marks_span_skipped(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out, "--no-calibrate"])
        spans = {r["name"]: r for r in load_jsonl(out) if r["type"] == "span"}
        assert spans["calibration"]["skipped"] is True

    def test_event_records_carry_predicates(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        events = [r for r in load_jsonl(out) if r["type"] == "event"]
        kinds = {r["kind"] for r in events}
        assert "port" in kinds and "index" in kinds
        assert all(
            "/" in r["predicate"] for r in events if r["kind"] == "port"
        )

    def test_stderr_summary(self, program_file, capsys):
        main(["profile", program_file, QUERY])
        err = capsys.readouterr().err
        assert "pipeline spans" in err
        assert "drift" in err

    def test_metrics_record_matches_run(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        records = load_jsonl(out)
        metrics = next(r for r in records if r["type"] == "metrics")
        solutions = next(r for r in records if r["type"] == "solutions")
        assert metrics["calls"] > 0
        assert solutions["count"] == 2  # john and ann


class TestRunJson:
    def test_run_exports_jsonl(self, program_file, tmp_path):
        out = str(tmp_path / "run.jsonl")
        assert main(["run", program_file, QUERY, "--json", out]) == 0
        records = load_jsonl(out)
        types = {r["type"] for r in records}
        assert {"profile", "metrics", "solutions", "event"} <= types

    def test_run_profile_flag_prints_summary(self, program_file, capsys):
        main(["run", program_file, QUERY, "--profile"])
        assert "events" in capsys.readouterr().err


class TestCompareJson:
    def test_compare_exports_both_runs(self, program_file, tmp_path):
        out = str(tmp_path / "compare.jsonl")
        assert main(["compare", program_file, QUERY, "--json", out]) == 0
        records = load_jsonl(out)
        runs = {r.get("run") for r in records if r["type"] == "metrics"}
        assert runs == {"original", "reordered"}

    def test_zero_call_run_emits_degenerate_record(self, program_file, tmp_path):
        # A control-construct-only query charges no calls on either
        # side: the ratio is undefined, and the export must say so
        # with a machine-readable marker instead of silence.
        out = str(tmp_path / "compare.jsonl")
        main(["compare", program_file, "true", "--json", out])
        records = load_jsonl(out)
        degenerate = [r for r in records if r["type"] == "degenerate"]
        assert {r["run"] for r in degenerate} == {"original", "reordered"}
        for record in degenerate:
            assert record["calls"] == 0
            assert "zero calls" in record["reason"]

    def test_normal_compare_has_no_degenerate_record(self, program_file, tmp_path):
        out = str(tmp_path / "compare.jsonl")
        main(["compare", program_file, QUERY, "--json", out])
        assert not [
            r for r in load_jsonl(out) if r["type"] == "degenerate"
        ]


class TestProfileFollowAndTrace:
    def test_follow_streams_aggregates_and_samples(self, program_file, tmp_path):
        out = str(tmp_path / "follow.jsonl")
        assert (
            main([
                "profile", program_file, QUERY,
                "--follow", "--follow-interval", "0.05",
                "--json", out, "--no-calibrate",
            ])
            == 0
        )
        records = load_jsonl(out)
        types = {r["type"] for r in records}
        assert {"stream", "sample"} <= types
        header = records[0]
        assert header["type"] == "profile"
        # Schema-2 header: sampling accounting is always present.
        assert header["schema"] == 2
        assert "dropped" in header and "sampled_rate" in header
        streams = [r for r in records if r["type"] == "stream"]
        assert all("/" in r["predicate"] for r in streams)
        assert all("total_calls" in r for r in streams)
        samples = [r for r in records if r["type"] == "sample"]
        assert all("cost" in r and "mode" in r for r in samples)

    def test_trace_export_is_loadable_perfetto_json(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        trace = str(tmp_path / "trace.json")
        assert (
            main([
                "profile", program_file, QUERY,
                "--json", out, "--trace", trace, "--no-calibrate",
            ])
            == 0
        )
        with open(trace) as handle:
            document = json.load(handle)
        assert document["traceEvents"]
        names = {event["name"] for event in document["traceEvents"]}
        # Both pipeline spans and engine boxes land in one trace.
        assert "goal search" in names
        assert any("/" in name for name in names)
