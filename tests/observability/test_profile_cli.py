"""End-to-end tests for the ``profile`` command and the JSONL export
paths of ``run`` and ``compare``."""

import json

import pytest

from repro.cli import main
from repro.observability import PIPELINE_PHASES

PROGRAM = """
:- entry(grandmother/2).
wife(john, jane). wife(tom, pat).
mother(john, joan). mother(joan, pat). mother(ann, joan).
girl(jan).
female(W) :- girl(W).
female(W) :- wife(_, W).
grandmother(GC, GM) :- grandparent(GC, GM), female(GM).
grandparent(GC, GP) :- parent(P, GP), parent(GC, P).
parent(C, P) :- mother(C, P).
parent(C, P) :- mother(C, M), wife(P, M).
"""

QUERY = "grandmother(G, pat)"


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "family.pl"
    path.write_text(PROGRAM)
    return str(path)


def load_jsonl(path):
    """Every line must round-trip through ``json.loads``."""
    records = []
    with open(path) as handle:
        for line in handle:
            assert line.endswith("\n")
            records.append(json.loads(line))
    return records


class TestProfileCommand:
    def test_jsonl_round_trips(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        assert main(["profile", program_file, QUERY, "--json", out]) == 0
        records = load_jsonl(out)
        assert all("type" in record for record in records)

    def test_record_inventory(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        records = load_jsonl(out)
        types = {}
        for record in records:
            types[record["type"]] = types.get(record["type"], 0) + 1
        assert types["profile"] == 1  # the header, first
        assert records[0]["type"] == "profile"
        assert types["span"] == len(PIPELINE_PHASES)
        assert types["search"] == 1
        assert types["metrics"] == 1
        assert types["solutions"] == 1
        assert types.get("drift", 0) >= 1
        assert types.get("event", 0) > 0

    def test_all_ten_phases_present(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        names = [r["name"] for r in load_jsonl(out) if r["type"] == "span"]
        assert sorted(names) == sorted(PIPELINE_PHASES)

    def test_no_calibrate_marks_span_skipped(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out, "--no-calibrate"])
        spans = {r["name"]: r for r in load_jsonl(out) if r["type"] == "span"}
        assert spans["calibration"]["skipped"] is True

    def test_event_records_carry_predicates(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        events = [r for r in load_jsonl(out) if r["type"] == "event"]
        kinds = {r["kind"] for r in events}
        assert "port" in kinds and "index" in kinds
        assert all(
            "/" in r["predicate"] for r in events if r["kind"] == "port"
        )

    def test_stderr_summary(self, program_file, capsys):
        main(["profile", program_file, QUERY])
        err = capsys.readouterr().err
        assert "pipeline spans" in err
        assert "drift" in err

    def test_metrics_record_matches_run(self, program_file, tmp_path):
        out = str(tmp_path / "profile.jsonl")
        main(["profile", program_file, QUERY, "--json", out])
        records = load_jsonl(out)
        metrics = next(r for r in records if r["type"] == "metrics")
        solutions = next(r for r in records if r["type"] == "solutions")
        assert metrics["calls"] > 0
        assert solutions["count"] == 2  # john and ann


class TestRunJson:
    def test_run_exports_jsonl(self, program_file, tmp_path):
        out = str(tmp_path / "run.jsonl")
        assert main(["run", program_file, QUERY, "--json", out]) == 0
        records = load_jsonl(out)
        types = {r["type"] for r in records}
        assert {"profile", "metrics", "solutions", "event"} <= types

    def test_run_profile_flag_prints_summary(self, program_file, capsys):
        main(["run", program_file, QUERY, "--profile"])
        assert "events" in capsys.readouterr().err


class TestCompareJson:
    def test_compare_exports_both_runs(self, program_file, tmp_path):
        out = str(tmp_path / "compare.jsonl")
        assert main(["compare", program_file, QUERY, "--json", out]) == 0
        records = load_jsonl(out)
        runs = {r.get("run") for r in records if r["type"] == "metrics"}
        assert runs == {"original", "reordered"}
