"""Tests for the streaming telemetry layer: ring buffers, reservoir
samplers, log-bucketed histograms, mergeable aggregates and the
sampling recorder's engine integration."""

import json

from repro.observability.streaming import (
    LogHistogram,
    ModeAggregate,
    ReservoirSampler,
    RingBuffer,
    StreamAggregates,
    StreamingRecorder,
    attach_recorder,
    detach_recorder,
)
from repro.observability.streaming.aggregate import _bucket_of
from repro.prolog import Engine, parse_term


def run_queries(engine, query, times=1):
    goal = parse_term(query)
    for _ in range(times):
        for _ in engine.solve(goal):
            pass


class TestRingBuffer:
    def test_bounded_with_drop_accounting(self):
        ring = RingBuffer(3)
        for item in range(5):
            ring.append(item)
        assert ring.to_list() == [2, 3, 4]
        assert len(ring) == 3
        assert ring.seen == 5
        assert ring.dropped == 2
        assert ring.truncated

    def test_under_capacity_drops_nothing(self):
        ring = RingBuffer(8)
        ring.append("a")
        assert ring.dropped == 0
        assert not ring.truncated

    def test_clear_resets_accounting(self):
        ring = RingBuffer(2)
        for item in range(4):
            ring.append(item)
        ring.clear()
        assert ring.to_list() == []
        assert ring.dropped == 0


class TestReservoirSampler:
    def test_bounded_and_uniformish(self):
        sampler = ReservoirSampler(10, seed=7)
        for item in range(1000):
            sampler.offer(item)
        assert len(sampler) == 10
        assert sampler.seen == 1000
        # A uniform sample of 1..1000 should not be the first ten.
        assert sorted(sampler) != list(range(10))

    def test_seeded_and_deterministic(self):
        def retained(seed):
            sampler = ReservoirSampler(5, seed=seed)
            for item in range(200):
                sampler.offer(item)
            return list(sampler)

        assert retained(3) == retained(3)

    def test_zero_capacity_retains_nothing(self):
        sampler = ReservoirSampler(0)
        assert not sampler.offer("x")
        assert len(sampler) == 0


class TestLogHistogram:
    def test_bucket_boundaries_are_powers_of_two(self):
        assert _bucket_of(0) == 0
        assert _bucket_of(0.5) == 0
        assert _bucket_of(1) == 1
        assert _bucket_of(1.9) == 1
        assert _bucket_of(2) == 2
        assert _bucket_of(3) == 2
        assert _bucket_of(4) == 3
        assert _bucket_of(2**20) == 21

    def test_mean_min_max_exact(self):
        histogram = LogHistogram()
        for value in (1, 2, 3, 10):
            histogram.add(value)
        assert histogram.count == 4
        assert histogram.mean == 4.0
        assert histogram.min == 1
        assert histogram.max == 10

    def test_percentiles_within_bucket_factor(self):
        histogram = LogHistogram()
        for value in range(1, 101):
            histogram.add(value)
        p50 = histogram.percentile(0.50)
        p99 = histogram.percentile(0.99)
        # Bucket midpoints are within sqrt(2) of the true quantile.
        assert 32 <= p50 <= 64
        assert p99 <= 100  # clamped to the observed max
        quantiles = histogram.quantiles()
        assert set(quantiles) == {"p50", "p95", "p99"}

    def test_empty_percentile_is_zero(self):
        assert LogHistogram().percentile(0.5) == 0.0
        assert LogHistogram().mean == 0.0

    def test_merge_matches_sequential(self):
        left, right, both = LogHistogram(), LogHistogram(), LogHistogram()
        for value in (1, 5, 9):
            left.add(value)
            both.add(value)
        for value in (2, 100):
            right.add(value)
            both.add(value)
        merged = left + right
        assert merged.buckets == both.buckets
        assert merged.count == both.count
        assert merged.total == both.total
        assert merged.min == both.min
        assert merged.max == both.max

    def test_payload_round_trip(self):
        histogram = LogHistogram(scale=1e6)
        histogram.add(0.000_5)
        histogram.add(0.25)
        payload = json.loads(json.dumps(histogram.to_payload()))
        rebuilt = LogHistogram.from_payload(payload)
        assert rebuilt.buckets == histogram.buckets
        assert rebuilt.scale == 1e6
        assert rebuilt.count == 2


class TestModeAggregate:
    def test_records_the_model_quantities(self):
        aggregate = ModeAggregate()
        aggregate.record(cost=3, solutions=2, seconds=0.001)
        aggregate.record(cost=5, solutions=0, seconds=0.002)
        assert aggregate.boxes == 2
        assert aggregate.successes == 1
        assert aggregate.mean_cost == 4.0
        assert aggregate.mean_solutions == 1.0
        assert aggregate.success_rate == 0.5

    def test_as_goal_stats(self):
        aggregate = ModeAggregate()
        aggregate.record(cost=7, solutions=2, seconds=0.0)
        stats = aggregate.as_goal_stats()
        assert stats.cost == 7.0
        assert stats.solutions == 2.0
        assert stats.prob == 1.0

    def test_merge_and_payload_round_trip(self):
        left, right = ModeAggregate(), ModeAggregate()
        left.record(1, 1, 0.001)
        right.record(9, 0, 0.002)
        merged = left + right
        assert merged.boxes == 2
        assert merged.mean_cost == 5.0
        rebuilt = ModeAggregate.from_payload(
            json.loads(json.dumps(merged.to_payload()))
        )
        assert rebuilt.boxes == merged.boxes
        assert rebuilt.mean_cost == merged.mean_cost
        assert rebuilt.cost.buckets == merged.cost.buckets


class TestStreamAggregates:
    def test_merge_sums_both_levels(self):
        left, right = StreamAggregates(), StreamAggregates()
        left.record_call(("p", 1))
        left.record_box(("p", 1), "(+)", 1, 1, 0.0)
        right.record_call(("p", 1))
        right.record_call(("q", 0))
        right.record_box(("p", 1), "(+)", 3, 0, 0.0)
        merged = left + right
        assert merged.total_calls == {("p", 1): 2, ("q", 0): 1}
        assert merged.get(("p", 1), "(+)").boxes == 2
        assert merged.sampled_boxes() == 2

    def test_payload_round_trip(self):
        aggregates = StreamAggregates()
        aggregates.record_call(("p", 2))
        aggregates.record_box(("p", 2), "(+, -)", 4, 1, 0.001)
        rebuilt = StreamAggregates.from_payload(
            json.loads(json.dumps(aggregates.to_payload()))
        )
        assert rebuilt.total_calls == aggregates.total_calls
        assert rebuilt.get(("p", 2), "(+, -)").boxes == 1

    def test_stream_records_sorted_and_typed(self):
        aggregates = StreamAggregates()
        aggregates.record_box(("z", 0), "()", 1, 1, 0.0)
        aggregates.record_box(("a", 0), "()", 1, 1, 0.0)
        records = aggregates.to_records()
        assert [record["type"] for record in records] == ["stream", "stream"]
        assert [record["predicate"] for record in records] == ["a/0", "z/0"]
        assert "cost" in records[0] and "p95" in records[0]["cost"]


class TestStreamingRecorderEngine:
    SOURCE = "q. r. p :- q, r."

    def test_rare_phase_samples_everything(self):
        engine = Engine.from_source(self.SOURCE)
        recorder = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "p")
        # 3 calls (p, q, r), all within the rare threshold.
        assert recorder.calls == 3
        assert recorder.aggregates.sampled_boxes() == 3
        assert recorder.sampled_rate() == 1.0

    def test_cost_is_exact_calls_in_box(self):
        engine = Engine.from_source(self.SOURCE)
        recorder = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "p")
        p = recorder.aggregates.get(("p", 0), "()")
        # p's box: its own call plus the q and r subgoal calls.
        assert p.mean_cost == 3.0
        assert recorder.aggregates.get(("q", 0), "()").mean_cost == 1.0

    def test_hot_predicates_follow_the_stride(self):
        engine = Engine.from_source("f(1).")
        recorder = attach_recorder(
            engine, StreamingRecorder(rare_threshold=0, sample_every=4)
        )
        run_queries(engine, "f(X)", times=20)
        assert ("f", 1) in recorder.hot
        assert recorder.calls == 20
        # Exactly the calls where the global counter hit the stride.
        assert recorder.aggregates.sampled_boxes() == 5
        assert recorder.sampled_rate() == 0.25

    def test_rare_threshold_promotes_to_hot(self):
        engine = Engine.from_source("f(1).")
        recorder = attach_recorder(
            engine, StreamingRecorder(rare_threshold=6, sample_every=1000)
        )
        run_queries(engine, "f(X)", times=10)
        # First 6 calls sampled (rare), the rest miss the long stride.
        assert recorder.aggregates.sampled_boxes() == 6
        assert ("f", 1) in recorder.hot
        assert recorder.aggregates.total_calls[("f", 1)] == 10

    def test_cost_exact_even_for_unsampled_descendants(self):
        engine = Engine.from_source(self.SOURCE)
        recorder = attach_recorder(
            engine,
            # Sample only when the counter hits a multiple of 64: with 3
            # calls per run, run 21 opens p's box at call 63... i.e. the
            # stride keeps q/r boxes unsampled while p's box still
            # charges their calls exactly.
            StreamingRecorder(rare_threshold=1, sample_every=4),
        )
        run_queries(engine, "p", times=8)
        p = recorder.aggregates.get(("p", 0), "()")
        assert p is not None
        # Every sampled p box costs exactly 3 calls, sampled or not
        # for the q/r boxes inside it.
        assert p.mean_cost == 3.0

    def test_detach_restores_fast_path_and_keeps_totals(self):
        engine = Engine.from_source("f(1).")
        recorder = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "f(X)", times=3)
        detach_recorder(engine)
        assert engine.recorder is None
        run_queries(engine, "f(X)", times=5)
        # Post-detach calls are not attributed to the recorder.
        assert recorder.calls == 3

    def test_attach_is_idempotent_per_engine(self):
        engine = Engine.from_source("f(1).")
        recorder = StreamingRecorder()
        attach_recorder(engine, recorder)
        attach_recorder(engine, recorder)
        run_queries(engine, "f(X)", times=2)
        assert recorder.calls == 2

    def test_shared_recorder_accounts_multiple_engines(self):
        recorder = StreamingRecorder()
        for _ in range(2):
            engine = Engine.from_source("f(1).")
            attach_recorder(engine, recorder)
            run_queries(engine, "f(X)", times=3)
        assert recorder.calls == 6
        assert recorder.aggregates.total_calls[("f", 1)] == 6

    def test_ring_bounds_memory(self):
        engine = Engine.from_source("f(1).")
        recorder = attach_recorder(
            engine, StreamingRecorder(capacity=4, rare_threshold=100)
        )
        run_queries(engine, "f(X)", times=10)
        assert len(recorder.ring) == 4
        assert recorder.dropped == 6
        assert recorder.truncated

    def test_samples_merge_ring_and_reservoirs_in_order(self):
        engine = Engine.from_source("f(1). g(2).")
        recorder = attach_recorder(
            engine, StreamingRecorder(capacity=3, rare_threshold=100)
        )
        run_queries(engine, "f(X)", times=4)
        run_queries(engine, "g(X)", times=4)
        samples = recorder.samples()
        # Reservoirs retain evicted f/1 samples the 3-slot ring lost.
        assert len(samples) > 3
        timestamps = [sample.ts for sample in samples]
        assert timestamps == sorted(timestamps)
        record = samples[0].to_record()
        assert record["type"] == "sample"
        assert record["predicate"] in ("f/1", "g/1")

    def test_summary_lines_report_rates(self):
        engine = Engine.from_source("f(1).")
        recorder = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "f(X)", times=2)
        lines = recorder.summary_lines()
        assert "calls=2" in lines[0]
        assert any("f/1" in line for line in lines[1:])


class TestAttachDetachLifecycle:
    """Attach/detach must be idempotent and exception-safe: the serve
    layer detaches in a ``finally`` around every request, whether the
    request completed, faulted, or was cancelled mid-query."""

    def test_detach_twice_is_a_noop(self):
        engine = Engine.from_source("f(1).")
        recorder = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "f(X)", times=2)
        assert detach_recorder(engine) is recorder
        # The second detach (e.g. an outer finally) touches nothing.
        assert detach_recorder(engine) is None
        assert recorder.calls == 2

    def test_detach_never_attached_returns_none(self):
        engine = Engine.from_source("f(1).")
        assert detach_recorder(engine) is None

    def test_detach_in_finally_after_midquery_exception(self):
        engine = Engine.from_source("f(1).\nboom(X) :- undefined_pred(X).")
        recorder = attach_recorder(engine, StreamingRecorder())
        try:
            try:
                engine.ask("f(X), boom(X)")
            finally:
                detach_recorder(engine)
        except Exception:
            pass
        # The calls charged before the blow-up were folded in, and the
        # recorder no longer tracks the dead engine's metrics.
        assert engine.recorder is None
        assert recorder.calls >= 1
        before = recorder.calls
        engine.ask("f(X)")
        assert recorder.calls == before

    def test_attaching_a_different_recorder_detaches_the_old_one(self):
        engine = Engine.from_source("f(1).")
        first = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "f(X)", times=2)
        second = attach_recorder(engine, StreamingRecorder())
        run_queries(engine, "f(X)", times=3)
        # No double instrumentation, no stale binding: each recorder
        # accounts exactly the calls made while it was attached.
        assert first.calls == 2
        assert second.calls == 3
        assert engine.recorder is second

    def test_unbind_unknown_metrics_is_a_noop(self):
        recorder = StreamingRecorder()
        engine = Engine.from_source("f(1).")
        recorder.unbind(engine.metrics)  # never bound: nothing happens
        assert recorder.calls == 0
