"""Tests for the continuous drift feed: ``StatsStore.observe``'s EWMA
and watermark semantics, and the ``DriftMonitor`` folding streaming
aggregates into the store and naming drifted recursion groups."""

import pytest

from repro.markov.goal_stats import GoalStats
from repro.markov.stats_store import StatsStore
from repro.observability.drift import DriftOptions
from repro.observability.events import EventBus
from repro.observability.streaming import StreamingRecorder, attach_recorder
from repro.observability.streaming.monitor import DriftMonitor
from repro.prolog import Engine
from repro.reorder.pipeline import AnalysisContext

KEY = (("p", 1), (("-",),))


class TestStatsStoreObserve:
    def test_first_observation_is_stored_verbatim(self):
        store = StatsStore()
        observed = store.observe(KEY, GoalStats(10.0, 2.0, 1.0), weight=4.0)
        assert observed.stats.cost == 10.0
        assert observed.weight == 4.0
        assert store.observed(KEY) is observed

    def test_equal_mark_blends_by_support_weighted_ewma(self):
        store = StatsStore()
        store.observe(KEY, GoalStats(10.0, 1.0, 1.0), weight=1.0, decay=0.5)
        blended = store.observe(
            KEY, GoalStats(20.0, 1.0, 1.0), weight=1.0, decay=0.5
        )
        # alpha = 1 - (1 - 0.5)**1 = 0.5
        assert blended.stats.cost == pytest.approx(15.0)
        assert blended.weight == 2.0
        # Heavier support pulls harder: alpha = 1 - 0.5**2 = 0.75.
        store2 = StatsStore()
        store2.observe(KEY, GoalStats(10.0, 1.0, 1.0), weight=1.0, decay=0.5)
        heavy = store2.observe(
            KEY, GoalStats(20.0, 1.0, 1.0), weight=2.0, decay=0.5
        )
        assert heavy.stats.cost == pytest.approx(17.5)

    def test_newer_mark_replaces_instead_of_blending(self):
        store = StatsStore()
        store.observe(KEY, GoalStats(10.0, 1.0, 1.0), weight=50.0, mark=1)
        replaced = store.observe(KEY, GoalStats(99.0, 1.0, 1.0), weight=1.0, mark=2)
        # The predicate was edited: the old blend is void, not averaged.
        assert replaced.stats.cost == 99.0
        assert replaced.weight == 1.0

    def test_older_mark_is_ignored(self):
        store = StatsStore()
        store.observe(KEY, GoalStats(10.0, 1.0, 1.0), weight=2.0, mark=5)
        stale = store.observe(KEY, GoalStats(99.0, 1.0, 1.0), weight=9.0, mark=4)
        assert stale.stats.cost == 10.0
        assert store.observed(KEY).weight == 2.0

    def test_adopt_observed_promotes_supported_blends(self):
        store = StatsStore()
        store.observe(KEY, GoalStats(10.0, 1.0, 1.0), weight=3.0)
        thin_key = (("q", 0), ())
        store.observe(thin_key, GoalStats(5.0, 1.0, 1.0), weight=0.5)
        adopted = store.adopt_observed(min_weight=1.0)
        assert adopted == [KEY]
        known, stats = store.lookup(KEY)
        assert known and stats.cost == 10.0
        assert not store.lookup(thin_key)[0]

    def test_invalidate_drops_observed_tier_too(self):
        store = StatsStore()
        store.observe(KEY, GoalStats(10.0, 1.0, 1.0))
        store.invalidate([("p", 1)])
        assert store.observed(KEY) is None


def fed_monitor(source, query, **monitor_kwargs):
    """Run ``query`` under a StreamingRecorder and feed one batch."""
    engine = Engine.from_source(source)
    recorder = attach_recorder(engine, StreamingRecorder())
    engine.ask(query)
    monitor = DriftMonitor(engine.database, **monitor_kwargs)
    events = monitor.feed(recorder.aggregates)
    return engine, monitor, events


class TestDriftMonitor:
    OVERESTIMATED = """
    :- cost(p/1, [-], 500, 1.0, 2).
    p(1).
    p(2).
    """

    def test_declared_cost_overestimate_fires(self):
        _, monitor, events = fed_monitor(self.OVERESTIMATED, "p(X)")
        assert len(events) == 1
        event = events[0]
        assert event.indicator == ("p", 1)
        assert event.scc == ("p/1",)
        assert any("overestimated" in reason for reason in event.reasons)
        assert monitor.drifted_predicates() == {("p", 1)}

    def test_store_receives_the_observed_feed(self):
        _, monitor, _ = fed_monitor(self.OVERESTIMATED, "p(X)")
        entries = list(monitor.store.observed_items())
        assert len(entries) == 1
        (key, observed), = entries
        assert key[0] == ("p", 1)
        assert observed.weight == 1.0  # one sampled box behind the blend
        assert observed.stats.solutions == pytest.approx(2.0)

    def test_events_are_edge_triggered(self):
        engine = Engine.from_source(self.OVERESTIMATED)
        recorder = attach_recorder(engine, StreamingRecorder())
        engine.ask("p(X)")
        monitor = DriftMonitor(engine.database)
        assert monitor.feed(recorder.aggregates)
        # Still drifted in the second batch: no re-fire.
        assert monitor.feed(recorder.aggregates) == []
        monitor.reset()
        assert monitor.feed(recorder.aggregates)

    def test_min_invocations_gates_thin_aggregates(self):
        _, monitor, events = fed_monitor(
            self.OVERESTIMATED,
            "p(X)",
            options=DriftOptions(min_invocations=100),
        )
        assert events == []
        assert monitor.drifted_predicates() == set()

    def test_events_also_reach_the_bus(self):
        bus = EventBus()
        _, _, events = fed_monitor(self.OVERESTIMATED, "p(X)", bus=bus)
        assert [event.kind for event in bus.events] == ["drift"]
        record = bus.events[0].to_record()
        assert record["type"] == "event"
        assert record["kind"] == "drift"
        assert record["scc"] == ["p/1"]

    def test_builtins_are_not_watched(self):
        source = ":- cost(p/1, [-], 500, 1.0, 2).\np(X) :- X = 1."
        _, monitor, events = fed_monitor(source, "p(X)")
        assert all(event.indicator == ("p", 1) for event in events)
        drifted = monitor.drifted_predicates()
        assert ("=", 2) not in drifted


class TestAcceptanceEndToEnd:
    """The PR's acceptance path: a live run's aggregates round-trip
    through ``StatsStore.observe`` into a ``DriftEvent`` naming the
    drifted SCC, which ``AnalysisContext.apply_drift`` invalidates."""

    SOURCE = """
    :- cost(path/2, [+, -], 500, 1.0, 1).
    edge(a, b).
    edge(b, c).
    edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    """

    def test_stream_to_scc_invalidation(self):
        engine = Engine.from_source(self.SOURCE)
        recorder = attach_recorder(engine, StreamingRecorder())
        engine.ask("path(a, X)")

        monitor = DriftMonitor(engine.database)
        events = monitor.feed(recorder.aggregates)

        # The live feed landed in the observed tier of the store...
        observed_keys = [key for key, _ in monitor.store.observed_items()]
        assert any(key[0] == ("path", 2) for key in observed_keys)

        # ...and the drift event names path/2's recursion component.
        path_events = [e for e in events if e.indicator == ("path", 2)]
        assert path_events
        assert path_events[0].scc == ("path/2",)

        # The monitor's invalidation closure matches what the pipeline
        # would invalidate for an edit to the same predicates.
        closure = monitor.invalidation()
        assert ("path", 2) in closure

        context = AnalysisContext(engine.database)
        affected = context.apply_drift(monitor.drifted_predicates())
        assert ("path", 2) in affected
        assert affected == monitor.invalidation()
        assert context.last_dirty == frozenset(monitor.drifted_predicates())
        # edge/2 is a callee, not a caller: only invalidated if it
        # itself drifted, never dragged in by path/2 alone.
        if ("edge", 2) not in monitor.drifted_predicates():
            assert ("edge", 2) not in affected
