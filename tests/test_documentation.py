"""Documentation coverage gate: every public item carries a docstring.

The reproduction's deliverables include "doc comments on every public
item"; this test makes that a checked invariant rather than an
aspiration. Public = importable from a ``repro`` module and not
underscore-prefixed.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export: documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # Properties/dataclass fields documented via class
                    # docstring or #: comments are fine; plain public
                    # methods must carry their own docstring.
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_every_module_defines_all():
    missing = [
        module.__name__
        for module in MODULES
        if not hasattr(module, "__all__")
        and any(
            not name.startswith("_")
            and getattr(obj, "__module__", None) == module.__name__
            for name, obj in vars(module).items()
            if inspect.isclass(obj) or inspect.isfunction(obj)
        )
    ]
    assert not missing, missing
