"""Unit tests for the experiment harness utilities."""

import pytest

from repro.analysis.modes import ModeItem, parse_mode_string
from repro.experiments.harness import (
    Row,
    Table,
    count_calls,
    label_to_mode,
    mode_queries,
)
from repro.prolog import Database, Engine


class TestRow:
    def test_ratio(self):
        assert Row("x", 100, 50).ratio == 2.0

    def test_zero_reordered(self):
        assert Row("x", 100, 0).ratio == float("inf")


class TestTable:
    def test_format_and_lookup(self):
        table = Table("T", [Row("a(-)", 10, 5), Row("b(+)", 3, 3)], note="n")
        text = table.format()
        assert "a(-)" in text and "2.00" in text and "n" in text
        assert table.row("b(+)").ratio == 1.0
        with pytest.raises(KeyError):
            table.row("missing")


class TestLabelToMode:
    def test_all_free(self):
        assert label_to_mode("pay(-,-,-)") == parse_mode_string("---")

    def test_constant_is_plus(self):
        assert label_to_mode("pay(-,jane,-)") == parse_mode_string("-+-")

    def test_spaces_tolerated(self):
        assert label_to_mode("f( - , jane )") == parse_mode_string("-+")


class TestModeQueries:
    def test_open_mode_single_query(self):
        queries = mode_queries("p", parse_mode_string("--"), ["a", "b"])
        assert queries == ["p(V0, V1)"]

    def test_half_instantiated(self):
        queries = mode_queries("p", parse_mode_string("+-"), ["a", "b"])
        assert queries == ["p(a, V0)", "p(b, V0)"]

    def test_fully_instantiated_cross_product(self):
        queries = mode_queries("p", parse_mode_string("++"), ["a", "b"])
        assert len(queries) == 4
        assert "p(a, b)" in queries

    def test_paper_counts_for_55(self):
        constants = [f"c{i}" for i in range(55)]
        assert len(mode_queries("p", parse_mode_string("--"), constants)) == 1
        assert len(mode_queries("p", parse_mode_string("-+"), constants)) == 55
        assert len(mode_queries("p", parse_mode_string("++"), constants)) == 3025


class TestCountCalls:
    def test_counts_accumulate(self):
        database = Database.from_source("p(a). p(b). q(X) :- p(X).")
        total = count_calls(lambda: Engine(database), ["q(a)", "q(b)", "q(z)"])
        assert total == 6  # each query: q + p
