"""Behavioural tests of the table generators (shape criteria).

Full Table II including the 3025-call (+,+) sweep runs in the benchmark
suite; here we regenerate the cheaper tables and Table II without the
fully-instantiated column, and assert the paper's qualitative shape.
"""

import pytest

from repro.experiments.tables import table1, table2, table3, table4


class TestTable1:
    def test_all_restrictions_detected(self):
        table = table1()
        assert len(table.rows) == 7
        for row in table.rows:
            assert row.reordered == 1, f"not detected: {row.label}"


@pytest.fixture(scope="module")
def table2_result():
    return table2(include_fully_instantiated=False)


class TestTable2:
    def test_row_count(self, table2_result):
        assert len(table2_result.rows) == 4 * 3  # 4 predicates x 3 modes

    def test_big_gain_in_half_instantiated_mode(self, table2_result):
        # The paper's headline: "Gains are most impressive for the
        # half-instantiated modes."
        assert table2_result.row("aunt(-,+)").ratio > 10
        assert table2_result.row("grandmother(-,+)").ratio > 5
        assert table2_result.row("cousins(-,+)").ratio > 10

    def test_cousins_gains_everywhere_open(self, table2_result):
        assert table2_result.row("cousins(-,-)").ratio > 10
        assert table2_result.row("cousins(+,-)").ratio > 10

    def test_no_catastrophic_slowdown(self, table2_result):
        for row in table2_result.rows:
            assert row.ratio > 0.7, row.label

    def test_open_modes_modest(self, table2_result):
        # (-,-) on grandmother: the paper saw 1.15; ours should be near 1.
        assert 0.8 < table2_result.row("grandmother(-,-)").ratio < 5


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3()

    def test_all_rows_present(self, result):
        labels = [row.label for row in result.rows]
        assert labels == [
            "benefits(-,-)", "pay(-,-,-)", "pay(-,jane,-)", "maternity(-,-)",
            "maternity(-,jane)", "average_pay(-,-)", "tax(-,-)", "tax(-,jane)",
        ]

    def test_gains_where_paper_has_them(self, result):
        assert result.row("benefits(-,-)").ratio > 1.1
        assert result.row("maternity(-,-)").ratio > 1.05
        assert result.row("tax(-,-)").ratio > 1.05

    def test_optimal_rules_unchanged(self, result):
        for label in ("pay(-,-,-)", "pay(-,jane,-)", "average_pay(-,-)",
                      "maternity(-,jane)", "tax(-,jane)"):
            assert result.row(label).ratio == pytest.approx(1.0, abs=0.1), label


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4()

    def test_rows(self, result):
        labels = [row.label for row in result.rows]
        assert labels == [
            "p58(+,+)", "meal(-,-,-)", "meal(+,+,-)", "team(-,-)",
            "team(+,+)", "kmbench",
        ]

    def test_modest_gains_band(self, result):
        # The paper: 1.06 - 3.87, "less impressive than with our other
        # programs"; our reconstructions land in the same band or above.
        assert 1.2 < result.row("p58(+,+)").ratio < 3.0
        assert 0.95 <= result.row("meal(-,-,-)").ratio < 1.5
        assert 0.95 <= result.row("meal(+,+,-)").ratio < 1.5
        assert result.row("kmbench").ratio > 1.05

    def test_team_gains_most(self, result):
        team_open = result.row("team(-,-)").ratio
        assert team_open > 2.0
        assert team_open == max(row.ratio for row in result.rows)

    def test_no_slowdowns(self, result):
        for row in result.rows:
            assert row.ratio >= 0.95, row.label
