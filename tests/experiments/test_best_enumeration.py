"""Unit tests for the 'cheapest reordering possible' enumeration."""

import pytest

from repro.analysis.modes import parse_mode_string
from repro.experiments.harness import best_order_by_enumeration
from repro.prolog import Database
from repro.reorder.system import Reorderer

SOURCE = """
wide(1). wide(2). wide(3). wide(4). wide(5). wide(6).
narrow(2). narrow(4).
link(2, a). link(4, b).
combo(X, T) :- wide(X), narrow(X), link(X, T).
"""

CONSTANTS = ["1", "2", "3", "4", "5", "6", "a", "b"]


@pytest.fixture(scope="module")
def reordered():
    return Reorderer(Database.from_source(SOURCE)).reorder()


class TestEnumeration:
    def test_best_at_most_reordered(self, reordered):
        mode = parse_mode_string("--")
        version = reordered.version_name(("combo", 2), mode)
        from repro.experiments.harness import count_calls, mode_queries

        reordered_cost = count_calls(
            lambda: reordered.engine(),
            mode_queries(version, mode, CONSTANTS),
        )
        best = best_order_by_enumeration(
            reordered, ("combo", 2), mode, CONSTANTS
        )
        assert best is not None
        assert best <= reordered_cost

    def test_combo_limit_respected(self, reordered):
        best = best_order_by_enumeration(
            reordered, ("combo", 2), parse_mode_string("--"), CONSTANTS,
            combo_limit=2,  # 3 goals -> 6 permutations > 2
        )
        assert best is None

    def test_query_limit_respected(self, reordered):
        best = best_order_by_enumeration(
            reordered, ("combo", 2), parse_mode_string("++"), CONSTANTS,
            query_limit=10,  # 64 (+,+) queries > 10
        )
        assert best is None

    def test_unknown_predicate(self, reordered):
        assert (
            best_order_by_enumeration(
                reordered, ("ghost", 2), parse_mode_string("--"), CONSTANTS
            )
            is None
        )

    def test_answer_changing_orders_excluded(self):
        # unequal/2 via \== succeeds wrongly on unbound args; orders
        # that move it first change the answers and must not count.
        source = """
        :- legal_mode(unequal(+, +)).
        item(a). item(b).
        unequal(X, Y) :- X \\== Y.
        pairs(X, Y) :- item(X), item(Y), unequal(X, Y).
        """
        program = Reorderer(Database.from_source(source)).reorder()
        best = best_order_by_enumeration(
            program, ("pairs", 2), parse_mode_string("--"), ["a", "b"]
        )
        assert best is not None
        # The best answer-preserving order still runs both generators
        # before the test: at least 3 calls.
        assert best >= 3
