"""Unit tests pinning the figure reproductions to the paper's numbers."""

import numpy as np
import pytest

from repro.experiments.figures import figure1, figure2, figures_4_5


class TestFigure1:
    def test_paper_numbers(self):
        result = figure1()
        assert result.original_cost == pytest.approx(130.24)
        assert result.reordered_cost == pytest.approx(49.64)

    def test_order(self):
        assert figure1().order == [3, 1, 0, 2]

    def test_format_mentions_paper(self):
        assert "130.24" in figure1().format()
        assert "49.64" in figure1().format()


class TestFigure2:
    def test_paper_numbers(self):
        result = figure2()
        assert result.original_cost == pytest.approx(98.928)
        assert result.reordered_cost == pytest.approx(78.968)

    def test_order(self):
        assert figure2().order == [0, 3, 2, 1]


class TestFigures45:
    def test_matrices_stochastic(self):
        result = figures_4_5()
        for key in ("single_matrix", "all_matrix"):
            matrix = result[key]
            assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_quantities_consistent(self):
        result = figures_4_5()
        assert 0.0 < result["p_body"] < 1.0
        assert result["c_single"] > 0
        assert result["c_multiple"] > 0
        assert len(result["single_visits"]) == 4
        assert result["v_success"] > 0

    def test_custom_probabilities(self):
        result = figures_4_5(probs=(0.5, 0.5), costs=(1.0, 1.0))
        # Symmetric ruin from state 1 of 2: P = 1/3.
        assert result["p_body"] == pytest.approx(1 / 3)
