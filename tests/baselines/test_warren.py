"""Unit tests for Warren's baseline reordering method."""

import pytest

from repro.baselines.warren import WarrenReorderer
from repro.prolog import Database, Engine, parse_term
from repro.prolog.database import body_goals
from repro.prolog.terms import term_variables


GEOGRAPHY = """
:- domain_size(borders/2, 1, 6).
:- domain_size(borders/2, 2, 6).
country(france). country(spain). country(italy).
country(portugal). country(austria). country(germany).
borders(france, spain). borders(france, italy). borders(france, germany).
borders(spain, portugal). borders(italy, austria). borders(germany, austria).
ocean(atlantic).
"""


def reorderer(source=GEOGRAPHY):
    return WarrenReorderer(Database.from_source(source))


class TestGoalFactor:
    def test_uninstantiated_is_tuple_count(self):
        w = reorderer()
        goal = parse_term("borders(X, Y)")
        assert w.goal_factor(goal, set()) == 6.0

    def test_partly_instantiated(self):
        w = reorderer()
        goal = parse_term("borders(X, Y)")
        x = goal.args[0]
        assert w.goal_factor(goal, {id(x)}) == pytest.approx(1.0)  # 6/6

    def test_constant_argument_counts_as_bound(self):
        w = reorderer()
        goal = parse_term("borders(france, Y)")
        assert w.goal_factor(goal, set()) == pytest.approx(1.0)

    def test_unknown_predicate_deferred_until_bound(self):
        w = reorderer()
        goal = parse_term("mystery(X)")
        # Non-database goals wait until their variables are bound.
        assert w.goal_factor(goal, set()) == float("inf")
        assert w.goal_factor(goal, {id(goal.args[0])}) == 1.0

    def test_paper_borders_values(self):
        # §I-E: 900 tuples, domains of 150: 900 / 6 / 0.04.
        source = (
            ":- domain_size(b/2, 1, 150). :- domain_size(b/2, 2, 150). b(x, y)."
        )
        w = WarrenReorderer(Database.from_source(source))
        w.domains._tuples[("b", 2)] = 900
        goal = parse_term("b(X, Y)")
        x, y = goal.args
        assert w.goal_factor(goal, set()) == 900
        assert w.goal_factor(goal, {id(x)}) == 6
        assert w.goal_factor(goal, {id(x), id(y)}) == pytest.approx(0.04)


class TestOrderGoals:
    def test_selective_goal_first(self):
        w = reorderer()
        body = parse_term("country(X), borders(X, portugal)")
        goals = body_goals(body)
        ordered = w.order_goals(goals)
        assert ordered[0].name == "borders"  # constant arg: factor < 1

    def test_instantiation_propagates(self):
        w = reorderer()
        body = parse_term("borders(france, Y), borders(Y, Z)")
        goals = body_goals(body)
        ordered = w.order_goals(goals)
        # First goal binds Y, making the second partly instantiated.
        assert str(ordered[0].args[0]) == "france"

    def test_bound_vars_seed(self):
        w = reorderer()
        body = parse_term("country(X), borders(X, Y)")
        goals = body_goals(body)
        x = term_variables(goals[0])[0]
        ordered = w.order_goals(goals, bound_vars=[x])
        # With X pre-bound, borders(X, Y) has factor 1 < country's ... both
        # shrink; ensure deterministic result and all goals kept.
        assert len(ordered) == 2

    def test_reorder_query(self):
        w = reorderer()
        query = parse_term("country(C), borders(C, portugal)")
        reordered = w.reorder_query(query)
        first = body_goals(reordered)[0]
        assert first.name == "borders"


class TestReorderProgram:
    def test_answers_preserved(self):
        source = GEOGRAPHY + "\nreach2(A, C) :- borders(A, B), borders(B, C).\n"
        database = Database.from_source(source)
        w = WarrenReorderer(database)
        reordered = w.reorder_program()
        query = "reach2(X, Y)"
        before = sorted(s.key() for s in Engine(database).ask(query))
        after = sorted(s.key() for s in Engine(reordered).ask(query))
        assert before == after

    def test_directives_carried_over(self):
        database = Database.from_source(GEOGRAPHY)
        reordered = WarrenReorderer(database).reorder_program()
        assert len(reordered.directives) == len(database.directives)

    def test_ground_assumption(self):
        source = GEOGRAPHY + "\npair(A, B) :- country(A), borders(A, B).\n"
        database = Database.from_source(source)
        reordered = WarrenReorderer(database).reorder_program("ground")
        clause = reordered.clauses(("pair", 2))[0]
        goals = body_goals(clause.body)
        # With head vars assumed bound, borders (6/36) beats country (6/6).
        assert goals[0].name == "borders"
