"""Cost-model behaviour on nested control constructs."""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.modes import Inst, parse_mode_string
from repro.markov.predicate_model import CostModel
from repro.prolog import Database, parse_term


def model_for(source):
    database = Database.from_source(source)
    return CostModel(database, Declarations.from_database(database))


BASE = "p(1). p(2). p(3). q(2). r(9)."


class TestNestedDisjunction:
    def test_nested_branches_summed(self):
        m = model_for(BASE)
        flat = m.goal_stats(parse_term("(p(X) ; q(X))"), {})
        nested = m.goal_stats(parse_term("((p(X) ; q(X)) ; r(X))"), {})
        assert nested.solutions == pytest.approx(flat.solutions + 1.0, rel=0.3)

    def test_states_joined_across_branches(self):
        m = model_for(BASE)
        goal = parse_term("(p(X) ; q(Y))")
        x = goal.args[0].args[0]
        states = {}
        m.goal_stats(goal, states)
        # X is bound in one branch only: joined state must be ANY.
        assert states[id(x)] is Inst.ANY

    def test_same_var_both_branches_ground(self):
        m = model_for(BASE)
        goal = parse_term("(p(X) ; q(X))")
        x = goal.args[0].args[0]
        states = {}
        m.goal_stats(goal, states)
        assert states[id(x)] is Inst.GROUND


class TestNestedIfThenElse:
    def test_ite_inside_conjunction(self):
        m = model_for(BASE)
        goal = parse_term("p(X), (q(X) -> r(Y) ; Y = none)")
        stats = m.goal_stats(goal, {})
        assert stats is not None
        assert stats.cost > 1.0

    def test_ite_condition_cost_always_paid(self):
        m = model_for(BASE)
        with_cheap_then = m.goal_stats(parse_term("(p(X) -> true ; true)"), {})
        bare_condition = m.goal_stats(parse_term("p(X)"), {})
        assert with_cheap_then.cost >= bare_condition.cost * 0.5

    def test_ite_probability_blends(self):
        m = model_for(BASE + " sure(always).")
        goal = parse_term("(q(9) -> sure(A) ; sure(B))")
        stats = m.goal_stats(goal, {})
        # Blend of p_cond*p_then + (1-p_cond)*p_else with both branch
        # probabilities at least the condition's: a proper probability.
        assert 0.0 < stats.prob <= 1.0
        condition_prob = m.goal_stats(parse_term("q(9)"), {}).prob
        assert stats.prob >= condition_prob * 0.99


class TestNegationNesting:
    def test_double_negation(self):
        m = model_for(BASE)
        goal = parse_term("\\+ \\+ p(X)")
        stats = m.goal_stats(goal, {})
        assert stats is not None
        assert stats.solutions <= 1.0

    def test_negation_of_conjunction(self):
        m = model_for(BASE)
        goal = parse_term("\\+ (p(X), q(X))")
        stats = m.goal_stats(goal, {})
        assert stats is not None

    def test_negation_keeps_outer_states(self):
        m = model_for(BASE)
        goal = parse_term("\\+ p(X)")
        x = goal.args[0].args[0]
        states = {}
        m.goal_stats(goal, states)
        assert states.get(id(x), Inst.FREE) is Inst.FREE


class TestFindallNesting:
    def test_findall_of_disjunction(self):
        m = model_for(BASE)
        goal = parse_term("findall(X, (p(X) ; q(X)), L)")
        states = {}
        stats = m.goal_stats(goal, states)
        assert stats.prob == 1.0
        l_var = goal.args[2]
        assert states[id(l_var)] is Inst.GROUND

    def test_findall_inside_ite(self):
        m = model_for(BASE)
        goal = parse_term(
            "(q(2) -> findall(X, p(X), L) ; L = [])"
        )
        states = {}
        stats = m.goal_stats(goal, states)
        assert stats is not None

    def test_illegal_deep_inside_poisons(self):
        m = model_for(BASE)
        goal = parse_term("findall(X, (p(X), Y is Z + 1), L)")
        assert m.goal_stats(goal, {}) is None
