"""Unit tests for the closed-form cost formulas, pinned to the paper's
worked numbers (Figs. 1–2, §III)."""

import pytest

from repro.markov.formulas import (
    all_solutions_cost_closed_form,
    all_solutions_visits_closed_form,
    expected_cost_until_failure,
    expected_cost_until_success,
    order_by_failure_ratio,
    order_by_success_ratio,
    single_solution_success_closed_form,
)


class TestFigure1Numbers:
    PROBS = [0.7, 0.8, 0.5, 0.9]
    COSTS = [100.0, 80.0, 100.0, 40.0]

    def test_original_cost(self):
        assert expected_cost_until_success(self.PROBS, self.COSTS) == pytest.approx(
            130.24
        )

    def test_ratio_order(self):
        # p/c: .9/40=.0225 > .8/80=.01 > .7/100=.007 > .5/100=.005
        assert order_by_success_ratio(self.PROBS, self.COSTS) == [3, 1, 0, 2]

    def test_reordered_cost(self):
        order = order_by_success_ratio(self.PROBS, self.COSTS)
        cost = expected_cost_until_success(
            [self.PROBS[i] for i in order], [self.COSTS[i] for i in order]
        )
        assert cost == pytest.approx(49.64)

    def test_optimality_of_ratio_order(self):
        # Li & Wah: decreasing p/c minimises the expected cost — check
        # against brute force over all 24 orders.
        import itertools

        best = min(
            expected_cost_until_success(
                [self.PROBS[i] for i in order], [self.COSTS[i] for i in order]
            )
            for order in itertools.permutations(range(4))
        )
        assert best == pytest.approx(49.64)


class TestFigure2Numbers:
    FAIL_PROBS = [0.8, 0.1, 0.3, 0.6]
    COSTS = [70.0, 100.0, 100.0, 60.0]

    def test_original_cost(self):
        assert expected_cost_until_failure(
            self.FAIL_PROBS, self.COSTS
        ) == pytest.approx(98.928)

    def test_ratio_order(self):
        # q/c: .8/70 > .6/60 > .3/100 > .1/100
        assert order_by_failure_ratio(self.FAIL_PROBS, self.COSTS) == [0, 3, 2, 1]

    def test_reordered_cost(self):
        order = order_by_failure_ratio(self.FAIL_PROBS, self.COSTS)
        cost = expected_cost_until_failure(
            [self.FAIL_PROBS[i] for i in order], [self.COSTS[i] for i in order]
        )
        assert cost == pytest.approx(78.968)

    def test_optimality(self):
        import itertools

        best = min(
            expected_cost_until_failure(
                [self.FAIL_PROBS[i] for i in order],
                [self.COSTS[i] for i in order],
            )
            for order in itertools.permutations(range(4))
        )
        assert best == pytest.approx(78.968)


class TestClosedForms:
    def test_visits_flow_equations(self):
        # v_1 (1-p_1) = 1 and v_{i+1}(1-p_{i+1}) = v_i p_i.
        probs = [0.6, 0.3, 0.8]
        visits, v_success = all_solutions_visits_closed_form(probs)
        assert visits[0] * (1 - probs[0]) == pytest.approx(1.0)
        for i in range(len(probs) - 1):
            assert visits[i + 1] * (1 - probs[i + 1]) == pytest.approx(
                visits[i] * probs[i]
            )
        assert v_success == pytest.approx(visits[-1] * probs[-1])

    def test_empty_sequence(self):
        visits, v_success = all_solutions_visits_closed_form([])
        assert visits == ()
        assert v_success == 1.0

    def test_cost_from_visits(self):
        probs, costs = [0.5, 0.25], [2.0, 4.0]
        visits, v_success = all_solutions_visits_closed_form(probs)
        total, per_solution = all_solutions_cost_closed_form(probs, costs)
        assert total == pytest.approx(sum(v * c for v, c in zip(visits, costs)))
        assert per_solution == pytest.approx(total / v_success)

    def test_ruin_probability_single_goal(self):
        assert single_solution_success_closed_form([0.3]) == pytest.approx(0.3)

    def test_ruin_probability_uniform(self):
        # p=1/2 everywhere: classic symmetric ruin, P = 1/(n+1).
        assert single_solution_success_closed_form([0.5] * 3) == pytest.approx(1 / 4)

    def test_ruin_empty(self):
        assert single_solution_success_closed_form([]) == 1.0
