"""Unit tests for the whole-program cost model."""

import pytest

from repro.analysis.declarations import Declarations
from repro.analysis.modes import Inst, parse_mode_string
from repro.markov.goal_stats import GoalStats
from repro.markov.predicate_model import CostModel, head_match_probability
from repro.prolog import Database, parse_term


def model_for(source):
    database = Database.from_source(source)
    return CostModel(database, Declarations.from_database(database))


def mode(text):
    return parse_mode_string(text)


class TestHeadMatchProbability:
    def test_variable_head_always_matches(self):
        m = model_for("f(X, Y).")
        clause = m.database.clauses(("f", 2))[0]
        assert head_match_probability(clause, mode("++"), m.domains) == 1.0

    def test_constant_head_scaled_by_domain(self):
        m = model_for("f(a). f(b). f(c). f(d).")
        clause = m.database.clauses(("f", 1))[0]
        assert head_match_probability(clause, mode("+"), m.domains) == pytest.approx(
            1 / 4
        )

    def test_unbound_call_always_matches(self):
        m = model_for("f(a). f(b).")
        clause = m.database.clauses(("f", 1))[0]
        assert head_match_probability(clause, mode("-"), m.domains) == 1.0

    def test_structured_head_default(self):
        m = model_for("f([_ | _]). f([]).")
        structured = m.database.clauses(("f", 1))[0]
        assert head_match_probability(structured, mode("+"), m.domains) == 0.5


class TestFactPredicates:
    def test_open_call(self):
        m = model_for("p(a). p(b). p(c).")
        stats = m.predicate_stats(("p", 1), mode("-"))
        assert stats.solutions == pytest.approx(3.0)
        assert stats.prob > 0.8

    def test_bound_call_is_test(self):
        m = model_for("p(a). p(b). p(c).")
        stats = m.predicate_stats(("p", 1), mode("+"))
        assert stats.solutions == pytest.approx(1.0)

    def test_cost_includes_the_call(self):
        m = model_for("p(a).")
        stats = m.predicate_stats(("p", 1), mode("-"))
        assert stats.cost >= 1.0


class TestBuiltins:
    def test_builtin_from_table(self):
        m = model_for("f(1).")
        stats = m.predicate_stats(("is", 2), mode("-+"))
        assert stats.prob == 1.0

    def test_illegal_builtin_mode(self):
        m = model_for("f(1).")
        assert m.predicate_stats(("is", 2), mode("--")) is None


class TestRulePredicates:
    SOURCE = """
    p(a, b). p(c, d). p(e, b).
    q(b).
    r(X) :- p(X, Y), q(Y).
    """

    def test_rule_stats(self):
        m = model_for(self.SOURCE)
        stats = m.predicate_stats(("r", 1), mode("-"))
        assert stats is not None
        assert stats.cost > 1.0
        assert 0 < stats.prob <= 1.0

    def test_illegal_mode_none(self):
        m = model_for("f(X) :- X > 0.")
        assert m.predicate_stats(("f", 1), mode("-")) is None

    def test_memoised(self):
        m = model_for(self.SOURCE)
        first = m.predicate_stats(("r", 1), mode("-"))
        second = m.predicate_stats(("r", 1), mode("-"))
        assert first is second

    def test_override(self):
        m = model_for(self.SOURCE)
        better = GoalStats(cost=0.5, solutions=1.0, prob=1.0)
        m.override_stats(("r", 1), mode("-"), better)
        assert m.predicate_stats(("r", 1), mode("-")) is better


class TestDeclarations:
    def test_declared_cost_wins(self):
        m = model_for(":- cost(p/1, [+], 99, 0.25). p(a).")
        stats = m.predicate_stats(("p", 1), mode("+"))
        assert stats.cost == 99.0
        assert stats.prob == 0.25

    def test_recursive_without_declaration_warns(self):
        m = model_for(
            ":- legal_mode(len(+, -)). "
            "len([], 0). len([_ | T], N) :- len(T, M), N is M + 1."
        )
        stats = m.predicate_stats(("len", 2), mode("+-"))
        assert stats is not None
        assert any("fallback" in w for w in m.warnings)

    def test_recursive_with_declaration_silent(self):
        m = model_for(
            ":- legal_mode(len(+, -)). :- cost(len/2, [+, ?], 10, 1.0). "
            "len([], 0). len([_ | T], N) :- len(T, M), N is M + 1."
        )
        stats = m.predicate_stats(("len", 2), mode("+-"))
        assert stats.cost == 10.0
        assert not m.warnings


class TestControlConstructs:
    def test_conjunction_goal(self):
        m = model_for("p(a). q(a).")
        states = {}
        stats = m.goal_stats(parse_term("p(X), q(X)"), states)
        assert stats is not None

    def test_disjunction_adds_solutions(self):
        m = model_for("p(a). p(b). q(c).")
        goal = parse_term("(p(X) ; q(X))")
        stats = m.goal_stats(goal, {})
        assert stats.solutions == pytest.approx(3.0)

    def test_disjunction_illegal_branch_poisons(self):
        m = model_for("p(1).")
        goal = parse_term("(p(X) ; X > 0)")
        assert m.goal_stats(goal, {}) is None

    def test_negation_flips_probability(self):
        m = model_for("p(a).")
        goal = parse_term("\\+ p(X)")
        x_var = goal.args[0].args[0]
        states = {id(x_var): Inst.GROUND}
        stats = m.goal_stats(goal, states)
        assert stats.solutions <= 1.0

    def test_cut_and_true_free(self):
        m = model_for("p(a).")
        assert m.goal_stats(parse_term("!"), {}).cost == 0.0
        assert m.goal_stats(parse_term("true"), {}).prob == 1.0
        assert m.goal_stats(parse_term("fail"), {}).prob == 0.0

    def test_findall_grounds_output(self):
        m = model_for("p(a). p(b).")
        goal = parse_term("findall(X, p(X), L)")
        l_var = goal.args[2]
        states = {}
        stats = m.goal_stats(goal, states)
        assert stats.prob == 1.0
        assert states[id(l_var)] is Inst.GROUND

    def test_if_then_else(self):
        m = model_for("p(a).")
        goal = parse_term("(p(X) -> q = q ; r = r)")
        stats = m.goal_stats(goal, {})
        assert stats is not None
        assert 0 < stats.prob <= 1.0

    def test_variable_goal_rejected(self):
        m = model_for("p(a).")
        assert m.goal_stats(parse_term("G"), {}) is None
