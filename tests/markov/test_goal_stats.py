"""Unit tests for GoalStats and its chain-parameter derivation."""

import pytest

from repro.markov.goal_stats import GoalStats


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            GoalStats(cost=-1.0, solutions=1.0, prob=0.5)

    def test_negative_solutions_rejected(self):
        with pytest.raises(ValueError):
            GoalStats(cost=1.0, solutions=-0.1, prob=0.5)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            GoalStats(cost=1.0, solutions=1.0, prob=1.5)


class TestChainParameters:
    def test_chain_probability_reproduces_solutions(self):
        # p = s/(1+s) makes the geometric expected-successes equal s.
        stats = GoalStats(cost=5.0, solutions=3.0, prob=0.9)
        p = stats.chain_probability
        assert p / (1 - p) == pytest.approx(3.0)

    def test_chain_cost_per_cycle(self):
        # One full generate-and-exhaust cycle = 1+s visits.
        stats = GoalStats(cost=8.0, solutions=3.0, prob=0.9)
        assert stats.chain_cost * (1 + stats.solutions) == pytest.approx(8.0)

    def test_deterministic_goal(self):
        stats = GoalStats(cost=1.0, solutions=1.0, prob=1.0)
        assert stats.chain_probability == pytest.approx(0.5)

    def test_test_goal(self):
        stats = GoalStats(cost=1.0, solutions=0.25, prob=0.25)
        assert stats.chain_probability == pytest.approx(0.2)

    def test_zero_solutions(self):
        stats = GoalStats(cost=1.0, solutions=0.0, prob=0.0)
        assert stats.chain_probability == 0.0
        assert stats.chain_cost == 1.0


class TestRatios:
    def test_failure_ratio(self):
        stats = GoalStats(cost=4.0, solutions=0.2, prob=0.2)
        assert stats.failure_ratio == pytest.approx(0.8 / 4.0)

    def test_success_ratio(self):
        stats = GoalStats(cost=4.0, solutions=0.2, prob=0.2)
        assert stats.success_ratio == pytest.approx(0.2 / 4.0)

    def test_zero_cost_infinite_ratio(self):
        stats = GoalStats(cost=0.0, solutions=1.0, prob=0.5)
        assert stats.failure_ratio == float("inf")


class TestScaled:
    def test_scaling(self):
        stats = GoalStats(cost=2.0, solutions=4.0, prob=0.8).scaled(0.5)
        assert stats.solutions == 2.0
        assert stats.prob == pytest.approx(0.4)
        assert stats.cost == 2.0

    def test_probability_capped(self):
        stats = GoalStats(cost=1.0, solutions=1.0, prob=0.8).scaled(2.0)
        assert stats.prob == 1.0
