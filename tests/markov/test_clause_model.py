"""Unit and property tests for sequence (clause-body) evaluation,
including the closed-form vs matrix cross-check."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.markov.clause_model import evaluate_sequence, sequence_cost
from repro.markov.goal_stats import GoalStats


def stats(cost, solutions, prob=None):
    if prob is None:
        prob = min(1.0, solutions)
    return GoalStats(cost=cost, solutions=solutions, prob=prob)


class TestEvaluateSequence:
    def test_empty(self):
        result = evaluate_sequence([])
        assert result.total_cost == 0.0
        assert result.solutions == 1.0
        assert result.p_success == 1.0

    def test_single_goal(self):
        result = evaluate_sequence([stats(4.0, 2.0)])
        assert result.solutions == pytest.approx(2.0)
        assert result.total_cost == pytest.approx(4.0)

    def test_solutions_multiply(self):
        result = evaluate_sequence([stats(1.0, 3.0), stats(1.0, 2.0)])
        assert result.solutions == pytest.approx(6.0)

    def test_tests_shrink_solutions(self):
        result = evaluate_sequence([stats(1.0, 10.0), stats(1.0, 0.1)])
        assert result.solutions == pytest.approx(1.0)

    def test_generator_after_test_cheaper(self):
        generator = stats(1.0, 10.0)
        test = stats(1.0, 0.1)
        assert sequence_cost([test, generator]) < sequence_cost([generator, test])

    def test_as_goal_stats(self):
        result = evaluate_sequence([stats(2.0, 1.0)])
        summary = result.as_goal_stats()
        assert summary.cost == result.total_cost
        assert summary.solutions == result.solutions


goal_stats_strategy = st.builds(
    lambda c, s: GoalStats(cost=c, solutions=s, prob=min(1.0, s)),
    st.floats(min_value=0.1, max_value=50.0),
    st.floats(min_value=0.01, max_value=20.0),
)


class TestClosedFormVsMatrix:
    @given(st.lists(goal_stats_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_total_cost_agrees(self, goal_list):
        closed = evaluate_sequence(goal_list, use_matrix=False)
        matrix = evaluate_sequence(goal_list, use_matrix=True)
        assert closed.total_cost == pytest.approx(matrix.total_cost, rel=1e-6)

    @given(st.lists(goal_stats_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_success_probability_agrees(self, goal_list):
        closed = evaluate_sequence(goal_list, use_matrix=False)
        matrix = evaluate_sequence(goal_list, use_matrix=True)
        assert closed.p_success == pytest.approx(matrix.p_success, rel=1e-6)

    @given(st.lists(goal_stats_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_single_cost_agrees(self, goal_list):
        closed = evaluate_sequence(goal_list, use_matrix=False)
        matrix = evaluate_sequence(goal_list, use_matrix=True)
        assert closed.single_cost == pytest.approx(
            matrix.single_cost, rel=1e-6, abs=1e-9
        )

    @given(st.lists(goal_stats_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_solutions_agree_with_chain_success_visits(self, goal_list):
        closed = evaluate_sequence(goal_list, use_matrix=False)
        matrix = evaluate_sequence(goal_list, use_matrix=True)
        assert closed.solutions == pytest.approx(matrix.solutions, rel=1e-6)


class TestMonotonicity:
    """The A* admissibility invariant: prefix cost never exceeds the
    cost of any extension."""

    @given(
        st.lists(goal_stats_strategy, min_size=2, max_size=6),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=150)
    def test_prefix_cost_is_lower_bound(self, goal_list, cut):
        cut = min(cut, len(goal_list) - 1)
        prefix_cost = sequence_cost(goal_list[:cut])
        full_cost = sequence_cost(goal_list)
        assert prefix_cost <= full_cost * (1 + 1e-9)

    @given(st.lists(goal_stats_strategy, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_single_cost_never_exceeds_total(self, goal_list):
        result = evaluate_sequence(goal_list)
        assert result.single_cost <= result.total_cost * (1 + 1e-9)
