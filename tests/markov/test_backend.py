"""Unit tests for per-stratum backend selection (`repro.markov.backend`)."""

from repro.markov import GoalStats
from repro.markov.backend import (
    BackendChoice,
    bottomup_cost_estimate,
    choose_backend,
)


class TestBottomUpCostEstimate:
    """The derivation-attempt bound behind every bottom-up verdict."""

    def test_nonrecursive_is_facts_times_rules_plus_one(self):
        """10 facts through 2 rules cost 10 * (2 + 1) attempts."""
        assert bottomup_cost_estimate(10, 2, recursive=False) == 30.0

    def test_recursive_pays_delta_propagation_factor(self):
        """A recursive stratum doubles the bound for delta re-entry."""
        assert bottomup_cost_estimate(10, 2, recursive=True) == 60.0

    def test_zero_facts_clamps_to_one(self):
        """An all-rules stratum still has a positive materialization cost."""
        assert bottomup_cost_estimate(0, 3, recursive=False) == 4.0


class TestChooseBackend:
    """Structural rules first, cost comparison for the middle ground."""

    def test_ineligible_is_always_topdown(self):
        choice = choose_backend(eligible=False, recursive=True)
        assert choice.backend == "topdown"
        assert "not datalog-eligible" in choice.reason

    def test_eligible_recursive_is_always_bottomup(self):
        choice = choose_backend(
            eligible=True, recursive=True, fact_count=5, rule_count=1
        )
        assert choice.backend == "bottomup"
        assert choice.bottomup_cost == bottomup_cost_estimate(5, 1, True)

    def test_recursive_carries_topdown_cost_when_known(self):
        stats = GoalStats(cost=100.0, solutions=4.0, prob=1.0)
        choice = choose_backend(
            eligible=True, recursive=True,
            fact_count=5, rule_count=1, topdown=stats,
        )
        assert choice.backend == "bottomup"
        assert choice.topdown_cost == 100.0

    def test_nonrecursive_without_stats_stays_topdown(self):
        """No calibration: SLD is demand-driven, do not materialize."""
        choice = choose_backend(
            eligible=True, recursive=False, fact_count=1000, rule_count=3
        )
        assert choice.backend == "topdown"
        assert choice.topdown_cost is None
        assert "no calibrated stats" in choice.reason

    def test_nonrecursive_cheap_topdown_stays_topdown(self):
        """Estimated SLD cost within the materialization bound wins."""
        stats = GoalStats(cost=5.0, solutions=2.0, prob=1.0)
        choice = choose_backend(
            eligible=True, recursive=False,
            fact_count=100, rule_count=2, topdown=stats,
        )
        assert choice.backend == "topdown"
        # cost * solutions = 10 <= 100 * 3 = 300
        assert choice.topdown_cost == 10.0
        assert choice.bottomup_cost == 300.0

    def test_nonrecursive_expensive_topdown_goes_bottomup(self):
        """Estimated SLD cost past the bound flips to materialization."""
        stats = GoalStats(cost=500.0, solutions=3.0, prob=1.0)
        choice = choose_backend(
            eligible=True, recursive=False,
            fact_count=10, rule_count=1, topdown=stats,
        )
        assert choice.backend == "bottomup"
        assert choice.topdown_cost == 1500.0
        assert choice.bottomup_cost == 20.0

    def test_solutions_below_one_clamp_in_estimate(self):
        """A sub-one expected-solutions count never discounts the cost."""
        stats = GoalStats(cost=50.0, solutions=0.1, prob=0.1)
        choice = choose_backend(
            eligible=True, recursive=False,
            fact_count=100, rule_count=0, topdown=stats,
        )
        assert choice.topdown_cost == 50.0  # max(1, 0.1) * 50

    def test_choice_is_frozen(self):
        """Verdicts are immutable records (they land in reports)."""
        choice = BackendChoice("topdown", "why")
        try:
            choice.backend = "bottomup"
        except AttributeError:
            pass
        else:  # pragma: no cover - failure branch
            raise AssertionError("BackendChoice should be frozen")
