"""Unit tests for the absorbing Markov chain analysis (Figs. 4–5)."""

import numpy as np
import pytest

from repro.markov.chain import (
    all_solutions_analysis,
    all_solutions_matrix,
    clamp_probability,
    gaussian_solve,
    single_solution_analysis,
    single_solution_matrix,
    solve_linear_system,
)


class TestMatrices:
    def test_single_solution_shape(self):
        matrix = single_solution_matrix([0.5, 0.5])
        assert matrix.shape == (4, 4)
        # Rows sum to 1 (a stochastic matrix).
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_single_solution_structure(self):
        p = [0.7, 0.4]
        matrix = single_solution_matrix(p)
        assert matrix[0, 0] == 1.0 and matrix[1, 1] == 1.0  # S, F absorbing
        assert matrix[2, 1] == pytest.approx(0.3)  # g1 fails into F
        assert matrix[2, 3] == pytest.approx(0.7)  # g1 succeeds into g2
        assert matrix[3, 0] == pytest.approx(0.4)  # g2 succeeds into S
        assert matrix[3, 2] == pytest.approx(0.6)  # g2 backtracks into g1

    def test_paper_fig4_layout_four_goals(self):
        # The paper's P_k has (1-p_a) from goal a into F, p_d from d into S.
        p = [0.9, 0.8, 0.7, 0.6]
        matrix = single_solution_matrix(p)
        assert matrix[2, 1] == pytest.approx(0.1)
        assert matrix[5, 0] == pytest.approx(0.6)

    def test_all_solutions_structure(self):
        p = [0.7, 0.4]
        matrix = all_solutions_matrix(p)
        assert matrix.shape == (4, 4)
        assert matrix[0, 0] == 1.0          # F absorbing
        assert matrix[3, 2] == 1.0          # S returns to the last goal
        assert matrix[1, 0] == pytest.approx(0.3)  # g1 fails into F
        assert np.allclose(matrix.sum(axis=1), 1.0)


class TestSingleSolutionAnalysis:
    def test_one_goal(self):
        result = single_solution_analysis([0.25], [4.0])
        assert result.p_success == pytest.approx(0.25)
        assert result.visits == (1.0,)
        assert result.expected_cost == pytest.approx(4.0)

    def test_two_deterministic_goals(self):
        result = single_solution_analysis([1.0, 1.0], [1.0, 2.0])
        assert result.p_success == pytest.approx(1.0)
        assert result.expected_cost == pytest.approx(3.0)

    def test_certain_failure(self):
        result = single_solution_analysis([0.0, 0.9], [1.0, 1.0])
        assert result.p_success == pytest.approx(0.0)
        assert result.visits[1] == pytest.approx(0.0)

    def test_backtracking_increases_visits(self):
        # g2 usually fails and bounces back into g1.
        result = single_solution_analysis([0.9, 0.1], [1.0, 1.0])
        assert result.visits[0] > 1.0

    def test_empty_body(self):
        result = single_solution_analysis([], [])
        assert result.p_success == 1.0
        assert result.expected_cost == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            single_solution_analysis([0.5], [1.0, 2.0])


class TestAllSolutionsAnalysis:
    def test_success_visits_are_expected_solutions(self):
        # With p_i = s/(1+s), v_S = prod of s_i.
        result = all_solutions_analysis([2 / 3, 1 / 2], [1.0, 1.0])
        assert result.success_visits == pytest.approx(2.0 * 1.0)

    def test_total_cost_positive(self):
        result = all_solutions_analysis([0.5, 0.5], [3.0, 5.0])
        assert result.total_cost > 0
        assert result.cost_per_solution == pytest.approx(
            result.total_cost / result.success_visits
        )

    def test_probability_one_clamped(self):
        result = all_solutions_analysis([1.0], [1.0])
        assert np.isfinite(result.total_cost)

    def test_empty(self):
        result = all_solutions_analysis([], [])
        assert result.success_visits == 1.0


class TestLinearAlgebra:
    def test_gaussian_matches_numpy(self):
        rng = np.random.default_rng(7)
        matrix = rng.random((5, 5)) + 5 * np.eye(5)
        rhs = rng.random(5)
        via_numpy = solve_linear_system(matrix, rhs, use_numpy=True)
        via_fallback = solve_linear_system(matrix, rhs, use_numpy=False)
        assert np.allclose(via_numpy, via_fallback)

    def test_gaussian_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            gaussian_solve([[1.0, 1.0], [1.0, 1.0]], [[1.0], [2.0]])

    def test_analysis_same_with_fallback(self):
        p, c = [0.6, 0.4, 0.8], [3.0, 5.0, 2.0]
        with_numpy = single_solution_analysis(p, c, use_numpy=True)
        without = single_solution_analysis(p, c, use_numpy=False)
        assert with_numpy.p_success == pytest.approx(without.p_success)
        assert with_numpy.expected_cost == pytest.approx(without.expected_cost)


class TestClamp:
    def test_clamps(self):
        assert clamp_probability(1.5) < 1.0
        assert clamp_probability(-0.2) == 0.0
        assert clamp_probability(0.5) == 0.5
