"""Unit tests for the benchmark program generators."""

import pytest

from repro.programs import REGISTRY, corporate, family_tree, kmbench, meal, p58, team
from repro.prolog import Database, Engine


class TestFamilyTree:
    def test_paper_fact_counts(self):
        # "55 constants ... 10 facts for girl/1, 19 for wife/2, and 34
        # for mother/2."
        assert len(family_tree.PERSONS) == 55
        assert len(family_tree.WIFE_FACTS) == 19
        assert len(family_tree.MOTHER_FACTS) == 34
        assert len(family_tree.GIRL_FACTS) == 10

    def test_persons_distinct(self):
        assert len(set(family_tree.PERSONS)) == 55

    def test_deterministic(self):
        import importlib

        names_before = list(family_tree.PERSONS)
        importlib.reload(family_tree)
        assert family_tree.PERSONS == names_before

    def test_no_sibling_marriages(self):
        mother_of = dict(family_tree.MOTHER_FACTS)
        for husband, wife in family_tree.WIFE_FACTS:
            if husband in mother_of and wife in mother_of:
                assert mother_of[husband] != mother_of[wife]

    def test_database_loads_and_runs(self):
        engine = Engine(family_tree.database())
        assert engine.succeeds("grandmother(X, Y)")
        assert engine.succeeds("aunt(X, Y)")
        assert engine.succeeds("cousins(X, Y)")
        assert engine.succeeds("brother(X, Y)")

    def test_every_mother_is_female(self):
        engine = Engine(family_tree.database())
        assert not engine.succeeds("mother(_, M), \\+ female(M)")

    def test_males_and_females_partition(self):
        engine = Engine(family_tree.database())
        females = engine.count_solutions("female(X)")
        # 19 wives + 10 girls (females via two rules, duplicates possible
        # only if a girl is also a wife - by construction not the case).
        assert females == 29

    def test_relationships_consistent(self):
        engine = Engine(family_tree.database())
        # Every aunt pair: the aunt is female or a wife.
        assert not engine.succeeds("aunt(_, A), \\+ female(A)")
        # grandmother implies two generations.
        assert not engine.succeeds("grandmother(X, X)")


class TestCorporate:
    def test_employee_count(self):
        assert len(corporate.EMPLOYEE_NAMES) == corporate.EMPLOYEE_COUNT == 120

    def test_names_distinct(self):
        assert len(set(corporate.EMPLOYEE_NAMES)) == 120

    def test_jane_exists(self):
        # Table III queries mention 'jane' by name.
        assert "jane" in corporate.EMPLOYEE_NAMES
        engine = Engine(corporate.database())
        assert engine.succeeds("employee(_, jane)")

    def test_queries_have_answers(self):
        engine = Engine(corporate.database())
        for label, query in corporate.TABLE3_QUERIES:
            assert engine.count_solutions(query) > 0, label

    def test_average_pay_sane(self):
        engine = Engine(corporate.database())
        for solution in engine.ask("average_pay(D, Avg)"):
            assert 20000 <= int(str(solution["Avg"])) <= 65000


class TestP58:
    def test_loads(self):
        engine = Engine(p58.database())
        assert engine.succeeds("p58(X, Y)")

    def test_fully_instantiated_queries(self):
        engine = Engine(p58.database())
        (label, queries), = p58.TABLE4_QUERIES
        assert label == "p58(+,+)"
        hits = sum(1 for q in queries if engine.succeeds(q))
        assert 0 < hits < len(queries)


class TestMeal:
    def test_loads(self):
        engine = Engine(meal.database())
        assert engine.succeeds("meal(A, M, D)")

    def test_calorie_budget_respected(self):
        engine = Engine(meal.database())
        assert not engine.succeeds(
            "meal(A, M, D), appetizer(A, CA), main_course(M, CM), "
            "dessert(D, CD), T is CA + CM + CD, T > 800"
        )

    def test_some_combinations_excluded(self):
        engine = Engine(meal.database())
        meals = engine.count_solutions("meal(A, M, D)")
        assert 0 < meals < 8 * 10 * 8


class TestTeam:
    def test_loads(self):
        engine = Engine(team.database())
        assert engine.succeeds("team(L, M)")

    def test_no_self_teams(self):
        engine = Engine(team.database())
        assert not engine.succeeds("team(P, P)")

    def test_people_count(self):
        assert len(team.PEOPLE) == 25


class TestKmbench:
    def test_all_problems_provable(self):
        engine = Engine(kmbench.database())
        for problem in kmbench.PROBLEMS:
            assert engine.succeeds(f"prove({problem})"), problem

    def test_unprovable(self):
        engine = Engine(kmbench.database())
        assert not engine.succeeds("prove(happy(carol))")

    def test_driver_runs(self):
        engine = Engine(kmbench.database())
        assert engine.succeeds("kmbench")


class TestRegistry:
    def test_all_programs_registered(self):
        assert set(REGISTRY) == {
            "family_tree", "corporate", "p58", "meal", "team", "kmbench",
            "geography",
        }

    def test_all_sources_parse(self):
        for name, module in REGISTRY.items():
            database = Database.from_source(module.source())
            assert len(database.predicates()) > 0, name
