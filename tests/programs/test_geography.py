"""Unit tests for the Warren geography scenario (§I-E scale)."""

import pytest

from repro.analysis.modes import parse_mode_string
from repro.baselines.warren import WarrenReorderer
from repro.programs import geography
from repro.prolog import Database, Engine, parse_term
from repro.reorder import Reorderer


class TestWorldShape:
    def test_paper_scale(self):
        # "about 150" countries, 900 border tuples.
        assert geography.COUNTRY_COUNT == 150
        assert len(geography.COUNTRIES) == 150
        assert len(geography.BORDER_PAIRS) == 900

    def test_borders_symmetric(self):
        pairs = set(geography.BORDER_PAIRS)
        assert all((b, a) in pairs for a, b in pairs)

    def test_no_self_borders(self):
        assert all(a != b for a, b in geography.BORDER_PAIRS)

    def test_six_neighbours_each(self):
        from collections import Counter

        outgoing = Counter(a for a, _ in geography.BORDER_PAIRS)
        assert set(outgoing.values()) == {6}

    def test_deterministic(self):
        import importlib

        first = list(geography.BORDER_PAIRS)
        importlib.reload(geography)
        assert geography.BORDER_PAIRS == first


class TestWarrenNumbers:
    def test_paper_borders_values(self):
        # The paper's exact worked numbers: 900 / 6 / 0.04.
        warren = WarrenReorderer(geography.database())
        goal = parse_term("borders(X, Y)")
        x, y = goal.args
        assert warren.goal_factor(goal, set()) == 900
        assert warren.goal_factor(goal, {id(x)}) == pytest.approx(6)
        assert warren.goal_factor(goal, {id(x), id(y)}) == pytest.approx(0.04)

    def test_country_factor(self):
        warren = WarrenReorderer(geography.database())
        goal = parse_term("country(C)")
        assert warren.goal_factor(goal, set()) == 150


class TestQuestions:
    @pytest.fixture(scope="class")
    def setup(self):
        database = geography.database()
        warren_database = WarrenReorderer(database).reorder_program()
        markov_program = Reorderer(database).reorder()
        return database, warren_database, markov_program

    def test_all_equivalent(self, setup):
        database, warren_database, markov_program = setup
        for label, query in geography.QUESTIONS:
            reference = sorted(s.key() for s in Engine(database).ask(query))
            assert sorted(
                s.key() for s in Engine(warren_database).ask(query)
            ) == reference, label
            assert sorted(
                s.key() for s in markov_program.engine().ask(query)
            ) == reference, label

    def test_both_methods_win_everywhere(self, setup):
        database, warren_database, markov_program = setup
        for label, query in geography.QUESTIONS:
            _, original = Engine(database).run(query)
            _, via_warren = Engine(warren_database).run(query)
            _, via_markov = markov_program.engine().run(query)
            assert via_warren.calls < original.calls, label
            assert via_markov.calls < original.calls, label

    def test_speedups_up_to_hundreds(self, setup):
        # "reordering to minimize this yielded speedups up to several
        # hundred times" — our q4 must exceed 50x.
        database, warren_database, _ = setup
        _, original = Engine(database).run("q4(A, B)")
        _, reordered = Engine(warren_database).run("q4(A, B)")
        assert original.calls / reordered.calls > 50

    def test_markov_at_least_warren_overall(self, setup):
        database, warren_database, markov_program = setup
        warren_total = markov_total = 0
        for _, query in geography.QUESTIONS:
            _, via_warren = Engine(warren_database).run(query)
            _, via_markov = markov_program.engine().run(query)
            warren_total += via_warren.calls
            markov_total += via_markov.calls
        # "somewhat better than Warren's" overall.
        assert markov_total <= warren_total
