"""Smoke tests: every example script runs and prints what it promises."""

import importlib
import sys

import pytest

EXAMPLES_DIR = "examples"


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(EXAMPLES_DIR)
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "family_tree_tour",
            "corporate_rules",
            "mode_inference_demo",
            "markov_playground",
            "advanced_features",
            "geography_queries",
        }:
            del sys.modules[name]


def run_example(name, capsys, argv=None):
    module = importlib.import_module(name)
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart", capsys)
    assert "reordered program" in output
    assert "ratio of improvement" in output
    assert "grandmother" in output


def test_family_tree_tour(capsys):
    output = run_example("family_tree_tour", capsys)
    assert "55 persons" in output
    assert "Table II" in output
    assert "aunt" in output and "cousins" in output


def test_corporate_rules(capsys):
    output = run_example("corporate_rules", capsys)
    assert "Table III" in output
    assert "maternity(Weeks, jane)" in output


def test_mode_inference_demo(capsys):
    output = run_example("mode_inference_demo", capsys)
    for section in ("call graph", "recursion", "fixity", "semifixity",
                    "legal modes", "Warren domains"):
        assert section in output


def test_markov_playground(capsys):
    output = run_example("markov_playground", capsys)
    assert "130.24" in output
    assert "78.968" in output
    assert "Fig. 4 transition matrix" in output


def test_advanced_features(capsys):
    output = run_example("advanced_features", capsys)
    assert "run-time tests" in output
    assert "unfolding" in output
    assert "calibration" in output


def test_geography_queries(capsys):
    output = run_example("geography_queries", capsys)
    assert "150 countries" in output
    assert "900" in output
    assert "0.04" in output
