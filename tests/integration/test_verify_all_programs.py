"""The verifier run across the benchmark programs.

Heavier than the per-query equivalence tests: every user predicate of
each program, in every {+,-} mode, with sampled instantiations, through
the reordered program's dispatchers.
"""

import pytest

from repro.programs import corporate, family_tree, kmbench, p58, team
from repro.reorder.system import Reorderer
from repro.reorder.verify import verify_reordering


@pytest.mark.parametrize(
    "module", [family_tree, corporate, p58, team, kmbench],
    ids=["family_tree", "corporate", "p58", "team", "kmbench"],
)
def test_program_verifies(module):
    database = module.database()
    program = Reorderer(database).reorder()
    report = verify_reordering(
        database, program, max_samples=3, call_budget=500_000
    )
    assert report.checks, "verifier must actually check something"
    assert report.passed, report.format()
