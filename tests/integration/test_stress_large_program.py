"""Stress: reordering a large, layered synthetic program.

Builds a deterministic program with dozens of predicates across several
layers (fact tables, joins over them, joins over the joins) and checks
the reorderer handles it whole: reasonable wall-time, warnings only
where expected, and set-equivalence on sampled queries.
"""

import time

import pytest

from repro.prolog import Database, Engine
from repro.reorder.system import Reorderer


def build_large_source(
    fact_tables: int = 12,
    facts_per_table: int = 40,
    joins: int = 20,
    top_rules: int = 8,
) -> str:
    lines = []
    constants = [f"k{i}" for i in range(25)]
    for table in range(fact_tables):
        for row in range(facts_per_table):
            a = constants[(row * 3 + table) % len(constants)]
            b = constants[(row * 7 + table * 5) % len(constants)]
            lines.append(f"t{table}({a}, {b}).")
    # Layer 1: binary joins between fact tables, tests-last phrasing.
    for join in range(joins):
        left = join % fact_tables
        right = (join * 3 + 1) % fact_tables
        lines.append(
            f"j{join}(X, Z) :- t{left}(X, Y), t{right}(Y, Z), X \\== Z."
        )
    # Layer 2: joins over layer-1 predicates.
    for rule in range(top_rules):
        first = rule % joins
        second = (rule * 5 + 2) % joins
        lines.append(f"top{rule}(A, C) :- j{first}(A, B), j{second}(B, C).")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def large_setup():
    source = build_large_source()
    database = Database.from_source(source)
    started = time.monotonic()
    program = Reorderer(database).reorder()
    elapsed = time.monotonic() - started
    return database, program, elapsed


class TestScale:
    def test_reorders_in_reasonable_time(self, large_setup):
        _, _, elapsed = large_setup
        assert elapsed < 60, f"reordering took {elapsed:.1f}s"

    def test_all_predicates_survive(self, large_setup):
        database, program, _ = large_setup
        for indicator in database.predicates():
            assert program.database.defines(indicator), indicator

    def test_sampled_equivalence(self, large_setup):
        database, program, _ = large_setup
        for rule in (0, 3, 7):
            query = f"top{rule}(A, C)"
            original = sorted(
                s.key() for s in Engine(database, call_budget=2_000_000).ask(query)
            )
            reordered = sorted(
                s.key()
                for s in program.engine(call_budget=2_000_000).ask(query)
            )
            assert original == reordered, query

    def test_reordering_not_slower_overall(self, large_setup):
        database, program, _ = large_setup
        original_total = reordered_total = 0
        for rule in range(8):
            query = f"top{rule}(A, C)"
            _, original = Engine(database, call_budget=2_000_000).run(query)
            _, reordered = program.engine(call_budget=2_000_000).run(query)
            original_total += original.calls
            reordered_total += reordered.calls
        assert reordered_total <= original_total * 1.1

    def test_bound_queries_equivalent(self, large_setup):
        database, program, _ = large_setup
        for constant in ("k0", "k7", "k24"):
            query = f"top1({constant}, C)"
            original = sorted(
                s.key() for s in Engine(database, call_budget=2_000_000).ask(query)
            )
            reordered = sorted(
                s.key()
                for s in program.engine(call_budget=2_000_000).ask(query)
            )
            assert original == reordered, query
