"""Property-based integration: reordering random database programs
preserves set-equivalence.

Hypothesis generates small random pure-Prolog database programs (facts
over a fixed constant pool plus conjunctive rules), reorders them, and
checks answer multisets match on open queries. This is the strongest
guard against the reorderer producing illegal or semantics-changing
orders.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.prolog import Database, Engine
from repro.reorder.system import Reorderer

CONSTANTS = ["a", "b", "c", "d", "e"]
FACT_PREDICATES = ["p", "q", "r"]


@st.composite
def database_programs(draw):
    """Source text of a random fact base plus 1–3 conjunctive rules."""
    lines = []
    for predicate in FACT_PREDICATES:
        for arity in (1, 2):  # both arities exist so rules never dangle
            count = draw(st.integers(min_value=1, max_value=5))
            for _ in range(count):
                args = ", ".join(
                    draw(st.sampled_from(CONSTANTS)) for _ in range(arity)
                )
                lines.append(f"{predicate}{arity}({args}).")
    rule_count = draw(st.integers(min_value=1, max_value=3))
    for index in range(rule_count):
        goal_count = draw(st.integers(min_value=2, max_value=4))
        variables = ["X", "Y", "Z"]
        goals = []
        for _ in range(goal_count):
            predicate = draw(st.sampled_from(FACT_PREDICATES))
            arity = draw(st.integers(min_value=1, max_value=2))
            args = ", ".join(
                draw(st.sampled_from(variables + CONSTANTS[:2]))
                for _ in range(arity)
            )
            goals.append(f"{predicate}{arity}({args})")
        lines.append(f"rule{index}(X, Y) :- {', '.join(goals)}.")
    return "\n".join(lines)


def answers(engine, query):
    return sorted(s.key() for s in engine.ask(query))


@given(database_programs())
@settings(max_examples=40, deadline=None)
def test_reordered_program_set_equivalent(source):
    database = Database.from_source(source)
    try:
        program = Reorderer(database).reorder()
    except Exception as error:  # the reorderer must never crash on these
        raise AssertionError(f"reorderer failed on:\n{source}\n{error}")
    for indicator in database.predicates():
        name, arity = indicator
        if not name.startswith("rule"):
            continue
        query = f"{name}({', '.join(f'V{i}' for i in range(arity))})"
        assert answers(Engine(database), query) == answers(
            program.engine(), query
        ), f"answers differ for {query} on:\n{source}"


@given(database_programs())
@settings(max_examples=25, deadline=None)
def test_unfolding_preserves_answers(source):
    from repro.reorder.unfold import UnfoldOptions, unfold_program

    database = Database.from_source(source)
    unfolded, _report = unfold_program(database, UnfoldOptions(rounds=2))
    for indicator in database.predicates():
        name, arity = indicator
        if not name.startswith("rule"):
            continue
        query = f"{name}({', '.join(f'V{i}' for i in range(arity))})"
        assert answers(Engine(database), query) == answers(
            Engine(unfolded), query
        ), f"unfold changed answers for {query} on:\n{source}"


@given(database_programs())
@settings(max_examples=15, deadline=None)
def test_unfold_then_reorder_preserves_answers(source):
    from repro.reorder.system import ReorderOptions

    database = Database.from_source(source)
    program = Reorderer(
        Database.from_source(source), ReorderOptions(unfold_rounds=2)
    ).reorder()
    for indicator in database.predicates():
        name, arity = indicator
        if not name.startswith("rule"):
            continue
        query = f"{name}({', '.join(f'V{i}' for i in range(arity))})"
        assert answers(Engine(database), query) == answers(
            program.engine(), query
        ), f"unfold+reorder changed answers for {query} on:\n{source}"


@given(database_programs())
@settings(max_examples=20, deadline=None)
def test_reordered_never_slower_by_much(source):
    """Reordering a pure database program never blows up the cost.

    (It may be mildly slower on tiny programs — the model is a
    heuristic — but a large regression means the model or the search is
    broken.)
    """
    database = Database.from_source(source)
    program = Reorderer(database).reorder()
    for indicator in database.predicates():
        name, arity = indicator
        if not name.startswith("rule"):
            continue
        query = f"{name}({', '.join(f'V{i}' for i in range(arity))})"
        _, original = Engine(database).run(query)
        version = program.version_name(indicator, tuple(
            __import__("repro.analysis.modes", fromlist=["ModeItem"]).ModeItem.MINUS
            for _ in range(arity)
        ))
        new_query = f"{version}({', '.join(f'V{i}' for i in range(arity))})"
        _, reordered = program.engine().run(new_query)
        assert reordered.calls <= original.calls * 3 + 20, query
