"""Integration: the reordered program is set-equivalent to its original
(paper §II — "The permitted reorderings described in this paper preserve
set-equivalence at worst").

For every benchmark program and a battery of queries per program, the
multiset of answers of the reordered program (through its dispatchers,
i.e. as a drop-in replacement) must equal the original's.
"""

import pytest

from repro.programs import REGISTRY, corporate, family_tree, kmbench, meal, p58, team
from repro.prolog import Database, Engine
from repro.reorder.system import Reorderer


def answer_multiset(engine, query):
    return sorted(s.key() for s in engine.ask(query))


def assert_set_equivalent(module, queries):
    database = module.database()
    program = Reorderer(database).reorder()
    for query in queries:
        original = answer_multiset(Engine(database), query)
        reordered = answer_multiset(program.engine(), query)
        assert original == reordered, query
        assert original, f"query unexpectedly empty: {query}"


class TestFamilyTree:
    def test_open_queries(self):
        assert_set_equivalent(
            family_tree,
            [
                "grandmother(X, Y)",
                "aunt(X, Y)",
                "cousins(X, Y)",
                "brother(X, Y)",
                "sister(X, Y)",
                "married(X, Y)",
                "siblings(X, Y)",
            ],
        )

    def test_half_instantiated(self):
        person = family_tree.PERSONS[0]
        # A generation-2 child (its mother is herself a child of a
        # founder wife), so a grandmother exists.
        mothers = dict(family_tree.MOTHER_FACTS)
        child = next(c for c, m in family_tree.MOTHER_FACTS if m in mothers)
        assert_set_equivalent(
            family_tree,
            [
                f"grandmother({child}, Y)",
                f"parent({child}, Y)",
                f"female(X), mother(X, {person})",
            ],
        )


class TestCorporate:
    def test_table3_queries(self):
        assert_set_equivalent(
            corporate, [query for _, query in corporate.TABLE3_QUERIES]
        )


class TestSmallPrograms:
    def test_p58(self):
        assert_set_equivalent(p58, ["p58(X, Y)"])

    def test_meal(self):
        assert_set_equivalent(meal, ["meal(A, M, D)", "meal(soup, M, D)"])

    def test_team(self):
        assert_set_equivalent(team, ["team(L, M)"])

    def test_kmbench(self):
        database = kmbench.database()
        program = Reorderer(database).reorder()
        for problem in kmbench.PROBLEMS:
            query = f"prove({problem})"
            assert Engine(database).succeeds(query) == program.engine().succeeds(
                query
            ), problem


class TestFailureEquivalence:
    """Reordered programs fail exactly where originals fail."""

    def test_failing_queries_still_fail(self):
        database = family_tree.database()
        program = Reorderer(database).reorder()
        failing = [
            "grandmother(X, X)",
            f"aunt({family_tree.PERSONS[6]}, {family_tree.PERSONS[6]})",
            "mother(nobody, Y)",
        ]
        for query in failing:
            assert not Engine(database).succeeds(query), query
            assert not program.engine().succeeds(query), query
